//! Structural tests of the generated workload traces — the properties the
//! simulator and the optimization passes rely on.

use oscache_trace::{BlockKind, DataClass, Event, Mode, Trace};
use oscache_workloads::{build, BuildOptions, Workload};

fn small(w: Workload) -> Trace {
    build(
        w,
        BuildOptions {
            scale: 0.1,
            seed: 0xfeed,
            ..Default::default()
        },
    )
}

#[test]
fn every_stream_starts_in_user_mode_and_switches() {
    for w in Workload::all() {
        let t = small(w);
        for (cpu, s) in t.streams.iter().enumerate() {
            let first_mode = s.events().iter().find_map(|e| match e {
                Event::SetMode { mode } => Some(*mode),
                _ => None,
            });
            assert_eq!(first_mode, Some(Mode::Os), "{w} cpu{cpu}: first switch");
        }
    }
}

#[test]
fn xproc_sends_equal_handles() {
    for w in Workload::all() {
        let t = small(w);
        let mut sends = 0usize;
        let mut handles = 0usize;
        for s in &t.streams {
            for e in s.events() {
                match e {
                    Event::Write {
                        class: DataClass::CpiEvents,
                        ..
                    } => sends += 1,
                    Event::Read {
                        class: DataClass::CpiEvents,
                        ..
                    } => handles += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(sends, handles, "{w}: cross-interrupt pairs unbalanced");
        assert!(sends > 0, "{w}: no cross-processor interrupts");
    }
}

#[test]
fn kernel_data_ranges_are_populated_and_disjoint() {
    let t = small(Workload::Trfd4);
    let ranges = &t.meta.kernel_data;
    assert!(ranges.len() >= 5);
    let mut sorted: Vec<_> = ranges.clone();
    sorted.sort_by_key(|(a, _)| a.0);
    for w in sorted.windows(2) {
        assert!(
            w[0].0 .0 + w[0].1 <= w[1].0 .0,
            "kernel data ranges overlap: {w:?}"
        );
    }
}

#[test]
fn zero_ops_only_come_from_page_zeroing() {
    let t = small(Workload::Trfd4);
    for s in &t.streams {
        for e in s.events() {
            if let Event::BlockOpBegin { op } = e {
                if op.kind == BlockKind::Zero {
                    assert_eq!(op.len, oscache_trace::PAGE_SIZE);
                    assert_eq!(op.dst_class, DataClass::PageFrame);
                }
            }
        }
    }
}

#[test]
fn block_op_bodies_only_touch_the_block() {
    let t = small(Workload::TrfdMake);
    for s in &t.streams {
        let mut cur: Option<oscache_trace::BlockOp> = None;
        for e in s.events() {
            match e {
                Event::BlockOpBegin { op } => cur = Some(*op),
                Event::BlockOpEnd => cur = None,
                Event::Read { addr, .. } if cur.is_some() => {
                    let op = cur.unwrap();
                    assert!(
                        addr.0 >= op.src.0 && addr.0 < op.src.0 + op.len,
                        "read {addr} outside src block {op:?}"
                    );
                }
                Event::Write { addr, .. } if cur.is_some() => {
                    let op = cur.unwrap();
                    assert!(
                        addr.0 >= op.dst.0 && addr.0 < op.dst.0 + op.len,
                        "write {addr} outside dst block {op:?}"
                    );
                }
                _ => {}
            }
        }
    }
}

#[test]
fn workload_mix_differs_in_the_documented_ways() {
    let count_barriers = |t: &Trace| {
        t.streams[0]
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Barrier { .. }))
            .count()
    };
    let count_syscalls = |t: &Trace| {
        t.streams
            .iter()
            .flat_map(|s| s.events())
            .filter(|e| {
                matches!(
                    e,
                    Event::Read {
                        class: DataClass::SyscallTable,
                        ..
                    }
                )
            })
            .count() as f64
            / t.total_events() as f64
    };
    let trfd = small(Workload::Trfd4);
    let shell = small(Workload::Shell);
    assert!(
        count_barriers(&trfd) > 8 * count_barriers(&shell).max(1),
        "TRFD_4 must be far more barrier-intensive than Shell: {} vs {}",
        count_barriers(&trfd),
        count_barriers(&shell)
    );
    assert!(
        count_syscalls(&shell) > 3.0 * count_syscalls(&trfd),
        "Shell must be far more system-call intensive than TRFD_4"
    );
}

#[test]
fn idle_time_is_emitted_for_every_cpu() {
    for w in Workload::all() {
        let t = small(w);
        for (cpu, s) in t.streams.iter().enumerate() {
            let idle: u64 = s
                .events()
                .iter()
                .filter_map(|e| match e {
                    Event::Idle { cycles } => Some(u64::from(*cycles)),
                    _ => None,
                })
                .sum();
            assert!(idle > 0, "{w} cpu{cpu}: no idle time");
        }
    }
}

#[test]
fn counters_are_updated_by_every_cpu() {
    let t = small(Workload::Shell);
    let v_syscall = t.meta.var_named("vmmeter.v_syscall").unwrap().addr;
    for (cpu, s) in t.streams.iter().enumerate() {
        let updates = s
            .events()
            .iter()
            .filter(|e| e.is_write() && e.data_addr() == Some(v_syscall))
            .count();
        assert!(updates > 0, "cpu{cpu} never bumps v_syscall");
    }
}

#[test]
fn seeds_change_the_trace_but_not_its_shape() {
    let a = build(
        Workload::Arc2dFsck,
        BuildOptions {
            scale: 0.1,
            seed: 1,
            ..Default::default()
        },
    );
    let b = build(
        Workload::Arc2dFsck,
        BuildOptions {
            scale: 0.1,
            seed: 2,
            ..Default::default()
        },
    );
    assert_ne!(
        a.streams[0].events().len(),
        b.streams[0].events().len(),
        "different seeds should differ in detail"
    );
    // But the volume is in the same ballpark (±20%).
    let ra = a.total_events() as f64;
    let rb = b.total_events() as f64;
    assert!((ra / rb - 1.0).abs() < 0.2, "{ra} vs {rb}");
}

#[test]
fn custom_mix_builds_and_respects_rates() {
    use oscache_workloads::build_with_mix;
    // A copy-free variant of TRFD_4.
    let mut mix = Workload::Trfd4.mix();
    mix.pf_zero = 0.0;
    mix.pf_pagein = 0.0;
    mix.chain_copy = 0.0;
    mix.user_copy = 0.0;
    mix.forks = 0.0;
    mix.execs = 0.0;
    mix.file_small = 0.0;
    mix.file_med = 0.0;
    let t = build_with_mix(
        "TRFD_4/no-copies",
        Workload::Trfd4,
        mix,
        BuildOptions {
            scale: 0.1,
            ..Default::default()
        },
    );
    assert_eq!(t.meta.workload, "TRFD_4/no-copies");
    let ops = t
        .streams
        .iter()
        .flat_map(|s| s.events())
        .filter(|e| matches!(e, Event::BlockOpBegin { .. }))
        .count();
    assert_eq!(ops, 0, "copy-free mix must emit no block operations");
}

#[test]
fn mix_accessor_matches_build() {
    // Building with the workload's own mix is identical to build().
    let opts = BuildOptions {
        scale: 0.05,
        seed: 77,
        ..Default::default()
    };
    let a = build(Workload::Shell, opts);
    let b =
        oscache_workloads::build_with_mix("Shell", Workload::Shell, Workload::Shell.mix(), opts);
    assert_eq!(a.total_events(), b.total_events());
    assert_eq!(a.streams[2].events(), b.streams[2].events());
}
