//! # oscache-workloads
//!
//! Generators for the four system-intensive workloads of Xia & Torrellas
//! (HPCA 1996, §2.3): [`Workload::Trfd4`], [`Workload::TrfdMake`],
//! [`Workload::Arc2dFsck`], and [`Workload::Shell`].
//!
//! Each generator composes the `oscache-kernel` services (page faults,
//! fork/exec, scheduling, gang barriers, cross-processor interrupts, file
//! I/O) with user-program models into a deterministic 4-CPU
//! [`oscache_trace::Trace`]. Activity rates are calibrated so the trace's
//! structure matches the paper's measurements: execution-time split
//! (Table 1), operating-system miss breakdown (Table 2), block-operation
//! characteristics and size mix (Tables 3–4), and coherence-miss
//! breakdown (Table 5).
//!
//! # Example
//!
//! ```
//! use oscache_workloads::{build, BuildOptions, Workload};
//!
//! let trace = build(Workload::Shell, BuildOptions { scale: 0.05, seed: 1, ..Default::default() });
//! assert_eq!(trace.n_cpus(), 4);
//! assert!(trace.total_events() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod user;

pub use builder::{
    build, build_chunked, build_chunked_shared, build_chunked_spilled, build_shared,
    build_with_mix, BuildOptions, Mix, TraceBuildKey, Workload, N_CPUS,
};
pub use user::{UserProc, UserProgram, UserPrograms};
