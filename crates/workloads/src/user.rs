//! User-level application models.
//!
//! Each of the paper's workloads (§2.3) runs real applications — TRFD and
//! ARC2D (hand-parallelized Perfect Club codes), the second phase of the C
//! compiler, `fsck`, and a shell-command mix. The models here generate
//! user-mode reference streams with the cache behaviour that matters for
//! Table 1 (the user share of references and misses): each program works
//! mostly in a cache-resident hot region while streaming more slowly
//! through a larger data set, giving the few-percent user miss rates the
//! paper measures, with per-program differences in footprint and access
//! shape.

use oscache_kernel::Kernel;
use oscache_trace::rng::Rng;
use oscache_trace::{Addr, CodeLayout, DataClass, SiteId, StreamBuilder};

/// One user program's code and data placement.
#[derive(Clone, Debug)]
pub struct UserProgram {
    /// The program's site (hot-spot attribution treats user code as one
    /// site per program).
    pub site: SiteId,
    /// Basic blocks of the compute kernel.
    blocks: Vec<oscache_trace::BlockId>,
    /// Basic blocks executed per data-access group (compute intensity).
    depth: usize,
}

/// The set of user programs a workload can run, with code registered in
/// the shared [`CodeLayout`].
#[derive(Clone, Debug)]
pub struct UserPrograms {
    /// TRFD: matrix multiplies and data exchanges.
    pub trfd: UserProgram,
    /// ARC2D: sparse linear systems (indexed accesses).
    pub arc2d: UserProgram,
    /// cc1: the C compiler's second phase (pointer-intensive).
    pub cc1: UserProgram,
    /// fsck: file-system check (I/O driven, small compute).
    pub fsck: UserProgram,
    /// Shell commands (find, ls, finger, …): small compute bursts.
    pub shell: UserProgram,
}

impl UserPrograms {
    /// Registers all user program code after the kernel text.
    pub fn new(code: &mut CodeLayout, kernel: &Kernel) -> Self {
        let mut cursor = (kernel.code.text_end.0 + 0xffff) & !0xffff;
        let mut prog = |code: &mut CodeLayout, name: &'static str, nblocks: u32, depth: usize| {
            let site = code.add_site(name, false);
            let mut blocks = Vec::new();
            for k in 0..nblocks {
                blocks.push(code.add_block(Addr(cursor + k * 64), 12, site));
            }
            cursor += nblocks * 64;
            cursor = (cursor + 4095) & !4095;
            UserProgram {
                site,
                blocks,
                depth,
            }
        };
        UserPrograms {
            trfd: prog(code, "user_trfd", 24, 5),
            arc2d: prog(code, "user_arc2d", 32, 4),
            cc1: prog(code, "user_cc1", 96, 3),
            fsck: prog(code, "user_fsck", 20, 2),
            shell: prog(code, "user_shell", 40, 2),
        }
    }
}

impl UserProgram {
    fn exec_step(&self, b: &mut StreamBuilder, k: usize) {
        // `depth` basic blocks of compute per data-access group: numeric
        // codes do a few dozen instructions of arithmetic per memory
        // burst, utilities far less.
        for j in 0..self.depth {
            b.exec(self.blocks[(self.depth * k + j) % self.blocks.len()]);
        }
    }
}

/// Per-process user-side state (array cursors, heap shape).
#[derive(Clone, Debug)]
pub struct UserProc {
    /// Process id (selects the address-space base).
    pub pid: u32,
    /// Data-segment base.
    pub data: Addr,
    /// Streaming cursor into the data segment.
    cursor: u32,
    /// Secondary sequential cursor (advances only when used).
    seq: u32,
    /// Execution step counter (drives block selection).
    step: usize,
}

/// Size of each program's cache-resident hot region, in bytes. Must fit
/// comfortably in the 32-KB L1D together with some streamed lines.
const HOT: u32 = 4 * 1024;

impl UserProc {
    /// Creates the state for process `pid` of `kernel`'s address map.
    pub fn new(kernel: &Kernel, pid: u32) -> Self {
        UserProc {
            pid,
            data: kernel.layout.user_data(pid),
            cursor: 0,
            seq: 0,
            step: 0,
        }
    }

    #[inline]
    fn hot(&self, off: u32) -> Addr {
        self.data.offset(off % HOT)
    }

    /// Like [`Self::hot`] but within the first `size` bytes — programs
    /// differ in how tight their inner working set is.
    #[inline]
    fn hot_in(&self, off: u32, size: u32) -> Addr {
        self.data.offset(off % size)
    }

    /// Current streaming position (bytes into the streamed operand) — the
    /// most recently produced data, used as block-copy source material.
    pub fn stream_pos(&self) -> u32 {
        self.cursor
    }

    /// One TRFD compute step: the matrix-multiply inner loop — repeated
    /// accesses to a cache-resident operand tile plus a slow stream over
    /// the large operand and result arrays.
    pub fn trfd_step(&mut self, b: &mut StreamBuilder, prog: &UserProgram) {
        prog.exec_step(b, self.step);
        let c = self.cursor;
        // Hot tile: six reads over a resident 2-KB operand tile.
        for k in 0..6u32 {
            b.read(self.hot(c.wrapping_mul(13) + k * 68), DataClass::UserData);
        }
        // Streaming operand: word-by-word on alternate steps.
        if self.step.is_multiple_of(2) {
            b.read(
                self.data.offset(64 * 1024 + self.seq % (96 * 1024)),
                DataClass::UserData,
            );
            self.seq = self.seq.wrapping_add(4);
        }
        if self.step.is_multiple_of(4) {
            b.write(
                self.data.offset(224 * 1024 + c % (64 * 1024)),
                DataClass::UserData,
            );
        }
        self.cursor = c.wrapping_add(4);
        self.step += 1;
    }

    /// One ARC2D step: sparse solver — index-vector read plus indirect
    /// accesses into a slowly-sliding window, with a hot coefficient
    /// region.
    pub fn arc2d_step(&mut self, b: &mut StreamBuilder, prog: &UserProgram, rng: &mut impl Rng) {
        prog.exec_step(b, self.step);
        let c = self.cursor;
        for k in 0..5u32 {
            b.read(
                self.hot_in(c.wrapping_mul(7) + k * 52, 3072),
                DataClass::UserData,
            );
        }
        // Index vector: sequential.
        if self.step.is_multiple_of(3) {
            b.read(
                self.data.offset(16 * 1024 + self.seq % (16 * 1024)),
                DataClass::UserData,
            );
            self.seq = self.seq.wrapping_add(4);
        }
        // Indirect access: mostly within the hot coefficient tile, with a
        // minority landing in a slowly-sliding 4-KB window.
        if rng.gen_bool(0.9) {
            b.read(
                self.hot_in(rng.gen_range(0..192u32) * 16, 3072),
                DataClass::UserData,
            );
        } else {
            let window = 64 * 1024 + ((c / 512) * 16) % (192 * 1024);
            let off = rng.gen_range(0..256u32) * 16;
            b.read(self.data.offset(window + off), DataClass::UserData);
        }
        if self.step.is_multiple_of(3) {
            b.write(
                self.data.offset(320 * 1024 + c % (32 * 1024)),
                DataClass::UserData,
            );
        }
        self.cursor = c.wrapping_add(4);
        self.step += 1;
    }

    /// One cc1 step: symbol-table lookups in a hot region plus pointer
    /// chases across a slowly-growing heap window.
    pub fn cc1_step(&mut self, b: &mut StreamBuilder, prog: &UserProgram, rng: &mut impl Rng) {
        prog.exec_step(b, self.step);
        let c = self.cursor;
        // Hot symbol table.
        for k in 0..5u32 {
            b.read(
                self.hot_in(c.wrapping_mul(29) + k * 36, 2048),
                DataClass::UserData,
            );
        }
        // Heap chase: recently-allocated nodes (the hot region) dominate;
        // a minority of chases land in a slowly-sliding 4-KB window.
        let off;
        let target = if rng.gen_bool(0.9) {
            off = rng.gen_range(0..128u32) * 16;
            self.hot_in(off, 2048)
        } else {
            let window = 32 * 1024 + ((c / 256) * 16) % (256 * 1024);
            off = rng.gen_range(0..256u32) * 16;
            self.data.offset(window + off)
        };
        b.read(target, DataClass::UserData);
        if rng.gen_bool(0.3) {
            b.write(target, DataClass::UserData);
        }
        // Stack frame churn: stays resident.
        b.write(self.data.offset(16 * 1024 + c % 2048), DataClass::UserStack);
        self.cursor = c.wrapping_add(4);
        self.step += 1;
    }

    /// One fsck step: inode/bitmap scanning — a resident bitmap plus a
    /// sequential inode sweep.
    pub fn fsck_step(&mut self, b: &mut StreamBuilder, prog: &UserProgram, rng: &mut impl Rng) {
        prog.exec_step(b, self.step);
        let c = self.cursor;
        for k in 0..5u32 {
            b.read(
                self.hot_in(c.wrapping_mul(11) + k * 44, 1536),
                DataClass::UserData,
            );
        }
        // Sequential inode sweep.
        if self.step.is_multiple_of(3) {
            b.read(
                self.data.offset(32 * 1024 + self.seq % (64 * 1024)),
                DataClass::UserData,
            );
            self.seq = self.seq.wrapping_add(4);
        }
        if rng.gen_bool(0.25) {
            b.write(self.data.offset(28 * 1024 + c % 2048), DataClass::UserData);
        }
        self.cursor = c.wrapping_add(4);
        self.step += 1;
    }

    /// One shell-command step: small, mostly-resident working set.
    pub fn shell_step(&mut self, b: &mut StreamBuilder, prog: &UserProgram, rng: &mut impl Rng) {
        prog.exec_step(b, self.step);
        let c = self.cursor;
        for k in 0..5u32 {
            b.read(
                self.hot_in(c.wrapping_mul(5) + k * 60, 1024),
                DataClass::UserData,
            );
        }
        if rng.gen_bool(0.35) {
            b.read(
                self.data.offset(16 * 1024 + self.seq % (24 * 1024)),
                DataClass::UserData,
            );
            self.seq = self.seq.wrapping_add(4);
        }
        b.write(self.data.offset(14 * 1024 + c % 1024), DataClass::UserStack);
        self.cursor = c.wrapping_add(4);
        self.step += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscache_trace::rng::SmallRng;
    use oscache_trace::Mode;

    fn setup() -> (Kernel, UserPrograms, CodeLayout) {
        let mut code = CodeLayout::new();
        let k = Kernel::new(&mut code);
        let u = UserPrograms::new(&mut code, &k);
        (k, u, code)
    }

    #[test]
    fn user_code_is_placed_after_kernel_text() {
        let (k, u, code) = setup();
        let first = code.block(u.trfd.blocks[0]).start;
        assert!(first.0 >= k.code.text_end.0);
    }

    #[test]
    fn user_programs_have_distinct_sites() {
        let (_, u, _) = setup();
        let sites = [
            u.trfd.site,
            u.arc2d.site,
            u.cc1.site,
            u.fsck.site,
            u.shell.site,
        ];
        for (i, a) in sites.iter().enumerate() {
            for b in &sites[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn steps_emit_user_mode_references() {
        let (k, u, _) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut p = UserProc::new(&k, 9);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::User);
        for _ in 0..10 {
            p.trfd_step(&mut b, &u.trfd);
            p.arc2d_step(&mut b, &u.arc2d, &mut rng);
            p.cc1_step(&mut b, &u.cc1, &mut rng);
            p.fsck_step(&mut b, &u.fsck, &mut rng);
            p.shell_step(&mut b, &u.shell, &mut rng);
        }
        let s = b.finish();
        assert!(s.read_count() > 100);
        assert!(s.write_count() > 20);
        for e in s.events() {
            if let Some(c) = e.data_class() {
                assert!(!c.is_kernel_structure(), "unexpected class {c:?}");
            }
        }
    }

    #[test]
    fn hot_region_accesses_stay_within_bounds() {
        let (k, u, _) = setup();
        let mut p = UserProc::new(&k, 3);
        let mut b = StreamBuilder::new();
        for _ in 0..500 {
            p.trfd_step(&mut b, &u.trfd);
        }
        let s = b.finish();
        // The 5 hot reads per step must stay inside [data, data+HOT).
        let hot_reads = s
            .events()
            .iter()
            .filter(|e| {
                matches!(e, oscache_trace::Event::Read { addr, .. }
                    if addr.0 >= p.data.0 && addr.0 < p.data.0 + HOT)
            })
            .count();
        assert!(hot_reads >= 500 * 6);
    }

    #[test]
    fn distinct_pids_use_distinct_address_spaces() {
        let (k, _, _) = setup();
        let p1 = UserProc::new(&k, 1);
        let p2 = UserProc::new(&k, 2);
        assert_ne!(p1.data, p2.data);
    }
}
