//! The four workloads of the paper (§2.3), composed from kernel services
//! and user-program models.
//!
//! Each builder produces a 4-CPU [`Trace`] whose structure is calibrated
//! against the paper's measurements: execution-time split (Table 1), miss
//! breakdown (Table 2), block-operation characteristics and size mix
//! (Table 3), and coherence-miss breakdown (Table 5). Generation is
//! deterministic for a given seed and scale.

use crate::user::{UserProc, UserPrograms};
use oscache_kernel::{Fill, Kernel, N_BARRIERS, N_BUFFERS, N_FRAMES};
use oscache_trace::rng::{Rng, SmallRng};
use oscache_trace::{
    BarrierId, ChunkedTrace, CodeLayout, DataClass, Mode, StreamBuilder, Trace, TraceMeta,
};

/// Number of CPUs in every workload (the traced machine has 4).
pub const N_CPUS: usize = 4;

/// Which of the paper's workloads to build.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// `TRFD_4`: four 4-process runs of the parallel TRFD code — highly
    /// parallel, synchronization-intensive, heavy page-fault and
    /// cross-interrupt activity.
    Trfd4,
    /// `TRFD+Make`: one TRFD plus four C-compiler runs — mixed
    /// parallel/serial regimes, substantial paging.
    TrfdMake,
    /// `ARC2D+Fsck`: four ARC2D copies plus a file-system check — wide
    /// I/O variety.
    Arc2dFsck,
    /// `Shell`: a heavily multiprogrammed shell script (21 background
    /// jobs) — sequential, fork/exec and system-call intensive.
    Shell,
}

impl Workload {
    /// The paper's name for the workload.
    pub fn name(self) -> &'static str {
        match self {
            Workload::Trfd4 => "TRFD_4",
            Workload::TrfdMake => "TRFD+Make",
            Workload::Arc2dFsck => "ARC2D+Fsck",
            Workload::Shell => "Shell",
        }
    }

    /// All four workloads in the paper's column order.
    pub fn all() -> [Workload; 4] {
        [
            Workload::Trfd4,
            Workload::TrfdMake,
            Workload::Arc2dFsck,
            Workload::Shell,
        ]
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Build options.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Scale factor on the number of scheduling rounds (1.0 ≈ a few
    /// million events; use ~0.05 for tests).
    pub scale: f64,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Number of processors (the paper's machine has 4; 1–8 supported
    /// for the scalability extension).
    pub n_cpus: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            scale: 1.0,
            seed: 0x05cac8e,
            n_cpus: N_CPUS,
        }
    }
}

/// Per-workload activity rates (per scheduling round, per CPU unless
/// noted). These are the calibration knobs mapped to the paper's tables —
/// and the public recipe for building *custom* workloads with
/// [`build_with_mix`].
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Scheduling rounds at scale 1.0.
    pub rounds: u32,
    /// User compute steps per round per CPU.
    pub user_steps: u32,
    /// Segments per round (service interleave points).
    pub segments: u32,
    /// Demand-zero page faults per round per CPU.
    pub pf_zero: f64,
    /// Page-in faults (buffer-cache copies) per round per CPU.
    pub pf_pagein: f64,
    /// Soft faults (no fill) per round per CPU.
    pub pf_soft: f64,
    /// Chained page copies (§4.1.3's reuse pattern) per round per CPU.
    pub chain_copy: f64,
    /// User-to-user exchange copies per round per CPU.
    pub user_copy: f64,
    /// Plain system calls per round per CPU.
    pub syscalls: f64,
    /// Sub-1-KB file operations per round per CPU.
    pub file_small: f64,
    /// 1–4-KB file operations per round per CPU.
    pub file_med: f64,
    /// Forks per round per CPU.
    pub forks: f64,
    /// Pages copied per fork (inclusive range).
    pub fork_pages: (u32, u32),
    /// Execs per round per CPU.
    pub execs: f64,
    /// Cross-processor interrupt pairs per round (whole machine).
    pub xproc_pairs: f64,
    /// Gang-schedule every N rounds (0 = never).
    pub gang_every: u32,
    /// Extra gang barriers per gang round.
    pub extra_barriers: u32,
    /// Idle cycles per round per CPU.
    pub idle_cycles: u32,
    /// Probability a fault's destination frame is a warm recycled frame.
    pub dst_warm: f64,
    /// Context switches per round per CPU.
    pub ctx_switches: u32,
    /// Multiplier on per-service kernel data work.
    pub work_scale: f64,
    /// Probability a system call chases cold scattered structures.
    pub misc_lookup: f64,
}

fn rates(w: Workload) -> Mix {
    match w {
        Workload::Trfd4 => Mix {
            rounds: 60,
            user_steps: 1400,
            segments: 8,
            pf_zero: 1.9,
            pf_pagein: 0.2,
            pf_soft: 1.0,
            chain_copy: 0.85,
            user_copy: 0.55,
            syscalls: 1.0,
            file_small: 0.3,
            file_med: 0.05,
            forks: 0.05,
            fork_pages: (2, 4),
            execs: 0.02,
            xproc_pairs: 3.0,
            gang_every: 1,
            extra_barriers: 9,
            idle_cycles: 14_000,
            dst_warm: 0.22,
            ctx_switches: 1,
            work_scale: 2.2,
            misc_lookup: 0.1,
        },
        Workload::TrfdMake => Mix {
            rounds: 60,
            user_steps: 1100,
            segments: 8,
            pf_zero: 1.2,
            pf_pagein: 0.25,
            pf_soft: 0.8,
            chain_copy: 0.35,
            user_copy: 0.35,
            syscalls: 2.5,
            file_small: 1.7,
            file_med: 0.35,
            forks: 0.25,
            fork_pages: (1, 2),
            execs: 0.2,
            xproc_pairs: 1.5,
            gang_every: 3,
            extra_barriers: 12,
            idle_cycles: 14_000,
            dst_warm: 0.22,
            ctx_switches: 2,
            work_scale: 1.5,
            misc_lookup: 0.25,
        },
        Workload::Arc2dFsck => Mix {
            rounds: 60,
            user_steps: 1100,
            segments: 8,
            pf_zero: 0.9,
            pf_pagein: 0.2,
            pf_soft: 0.8,
            chain_copy: 0.5,
            user_copy: 0.3,
            syscalls: 2.0,
            file_small: 2.6,
            file_med: 0.9,
            forks: 0.1,
            fork_pages: (2, 3),
            execs: 0.05,
            xproc_pairs: 1.2,
            gang_every: 2,
            extra_barriers: 12,
            idle_cycles: 16_000,
            dst_warm: 0.45,
            ctx_switches: 2,
            work_scale: 0.95,
            misc_lookup: 0.3,
        },
        Workload::Shell => Mix {
            rounds: 60,
            user_steps: 650,
            segments: 8,
            pf_zero: 0.6,
            pf_pagein: 0.05,
            pf_soft: 0.6,
            chain_copy: 0.05,
            user_copy: 0.1,
            syscalls: 6.0,
            file_small: 5.0,
            file_med: 0.4,
            forks: 0.12,
            fork_pages: (1, 1),
            execs: 0.2,
            xproc_pairs: 0.6,
            gang_every: 16,
            extra_barriers: 2,
            idle_cycles: 30_000,
            dst_warm: 0.05,
            ctx_switches: 3,
            work_scale: 0.5,
            misc_lookup: 1.0,
        },
    }
}

impl Workload {
    /// The calibrated activity mix of this workload (a starting point for
    /// custom mixes).
    pub fn mix(self) -> Mix {
        rates(self)
    }
}

/// Builds one of the paper's workload traces.
pub fn build(workload: Workload, opts: BuildOptions) -> Trace {
    Builder::new(workload, rates(workload), opts, false).run()
}

/// Builds a trace behind an [`std::sync::Arc`] so it can be shared
/// immutably across threads (the cache-friendly entry point used by
/// `oscache-core`'s trace cache).
pub fn build_shared(workload: Workload, opts: BuildOptions) -> std::sync::Arc<Trace> {
    std::sync::Arc::new(build(workload, opts))
}

/// Builds the same trace [`build`] would, but encoded straight into the
/// chunked representation: each per-CPU stream is sealed into fixed-size
/// delta-encoded chunks as the generator emits events, so the peak decoded
/// footprint during generation is one chunk per CPU instead of the whole
/// event vector. Deterministic per [`TraceBuildKey`], exactly like the
/// materialized build — decoding the result yields `build(workload, opts)`
/// event for event (the streaming oracle pins this).
pub fn build_chunked(workload: Workload, opts: BuildOptions) -> ChunkedTrace {
    Builder::new(workload, rates(workload), opts, true).run_chunked()
}

/// [`build_chunked`] under a memory budget: each per-CPU stream seals its
/// chunks straight into `store`'s segment for that CPU whenever `budget`
/// refuses to keep them resident, so the build's peak memory is O(chunk)
/// even when the encoded trace exceeds the budget. The produced trace
/// decodes event-for-event identical to [`build_chunked`] — only where
/// the encoded bytes live differs (the spill oracle pins this).
pub fn build_chunked_spilled(
    workload: Workload,
    opts: BuildOptions,
    store: &std::sync::Arc<oscache_trace::SpillStore>,
    budget: &std::sync::Arc<oscache_trace::MemBudget>,
) -> ChunkedTrace {
    let mut b = Builder::new(workload, rates(workload), opts, true);
    for (cpu, s) in b.streams.iter_mut().enumerate() {
        *s = spilling_stream(cpu, store, budget);
    }
    b.run_chunked()
}

/// A fresh spilling stream builder with the initial `Mode::User` switch
/// the generator expects (matching `Builder::new`'s stream setup).
fn spilling_stream(
    cpu: usize,
    store: &std::sync::Arc<oscache_trace::SpillStore>,
    budget: &std::sync::Arc<oscache_trace::MemBudget>,
) -> StreamBuilder {
    let mut s = StreamBuilder::new_chunked_spilling(oscache_trace::SpillTarget {
        store: store.clone(),
        cpu,
        budget: budget.clone(),
    });
    s.set_mode(Mode::User);
    s
}

/// [`build_chunked`] behind an [`std::sync::Arc`] for the trace cache.
pub fn build_chunked_shared(
    workload: Workload,
    opts: BuildOptions,
) -> std::sync::Arc<ChunkedTrace> {
    std::sync::Arc::new(build_chunked(workload, opts))
}

/// The identity of a calibrated trace build: two equal keys always denote
/// bitwise-identical traces (generation is deterministic per key).
///
/// The float scale is captured by its IEEE-754 bit pattern so the key is
/// hashable without tolerance games.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TraceBuildKey {
    /// Which workload generator ran.
    pub workload: Workload,
    /// `scale.to_bits()` of the build.
    pub scale_bits: u64,
    /// RNG seed.
    pub seed: u64,
    /// Processor count of the traced machine.
    pub n_cpus: usize,
}

impl BuildOptions {
    /// The cache key identifying the trace `build(workload, self)` returns.
    pub fn key(&self, workload: Workload) -> TraceBuildKey {
        TraceBuildKey {
            workload,
            scale_bits: self.scale.to_bits(),
            seed: self.seed,
            n_cpus: self.n_cpus,
        }
    }
}

impl TraceBuildKey {
    /// The build options this key denotes — the exact inverse of
    /// [`BuildOptions::key`], which is what lets a spill rebuilder
    /// re-derive a trace from nothing but the key.
    pub fn options(&self) -> BuildOptions {
        BuildOptions {
            scale: f64::from_bits(self.scale_bits),
            seed: self.seed,
            n_cpus: self.n_cpus,
        }
    }
}

/// Builds a trace from a custom activity [`Mix`].
///
/// The user-program phase follows `base`'s recipe (which applications run
/// when); every kernel-activity rate comes from `mix`. The trace's
/// workload name is `name`.
///
/// # Examples
///
/// ```
/// use oscache_workloads::{build_with_mix, BuildOptions, Workload};
///
/// let mut mix = Workload::Shell.mix();
/// mix.syscalls *= 2.0; // a syscall-happier shell
/// let trace = build_with_mix(
///     "Shell/2x-syscalls",
///     Workload::Shell,
///     mix,
///     BuildOptions { scale: 0.05, ..Default::default() },
/// );
/// assert_eq!(trace.meta.workload, "Shell/2x-syscalls");
/// ```
///
/// # Panics
///
/// Panics if `opts.scale <= 0`, `mix.segments < 2`, or `opts.n_cpus` is
/// outside `1..=8`.
pub fn build_with_mix(name: &str, base: Workload, mix: Mix, opts: BuildOptions) -> Trace {
    assert!(mix.segments >= 2, "need at least two segments per round");
    let mut trace = Builder::new(base, mix, opts, false).run();
    trace.meta.workload = name.to_string();
    trace
}

struct Builder {
    workload: Workload,
    n_cpus: usize,
    rates: Mix,
    kernel: Kernel,
    users: UserPrograms,
    code: CodeLayout,
    streams: Vec<StreamBuilder>,
    rng: SmallRng,
    frame_next: u32,
    /// Per-CPU frames recently produced by block operations (zeroed pages,
    /// fork children) — the source pool for chained copies (§4.1.3).
    recent_frames: Vec<Vec<u32>>,
    procs: Vec<UserProc>,
    pid_next: u32,
    rounds: u32,
    fault_cursor: Vec<u32>,
    last_buffer: Vec<u32>,
}

impl Builder {
    fn new(workload: Workload, r: Mix, opts: BuildOptions, chunked: bool) -> Self {
        assert!(opts.scale > 0.0, "scale must be positive");
        let n_cpus = opts.n_cpus;
        let mut code = CodeLayout::new();
        let mut kernel = Kernel::for_cpus(&mut code, n_cpus);
        let users = UserPrograms::new(&mut code, &kernel);
        kernel.work_scale = r.work_scale;
        kernel.misc_lookup = r.misc_lookup;
        let rounds = ((f64::from(r.rounds) * opts.scale).round() as u32).max(2);
        let procs = (0..n_cpus)
            .map(|c| UserProc::new(&kernel, 4 + c as u32))
            .collect();
        let mut streams: Vec<StreamBuilder> = (0..n_cpus)
            .map(|_| {
                if chunked {
                    StreamBuilder::new_chunked()
                } else {
                    StreamBuilder::new()
                }
            })
            .collect();
        for s in &mut streams {
            s.set_mode(Mode::User);
        }
        Builder {
            workload,
            n_cpus,
            rates: r,
            kernel,
            users,
            code,
            streams,
            rng: SmallRng::seed_from_u64(opts.seed),
            frame_next: 64,
            recent_frames: vec![Vec::new(); n_cpus],
            fault_cursor: vec![0; n_cpus],
            last_buffer: vec![0; n_cpus],
            procs,
            pid_next: 8,
            rounds,
        }
    }

    fn alloc_frame(&mut self) -> u32 {
        let f = self.frame_next;
        self.frame_next = (self.frame_next + 1) % N_FRAMES;
        f
    }

    fn alloc_pid(&mut self) -> u32 {
        let p = self.pid_next;
        // A small recycled pid space: exiting processes' frames and table
        // entries are promptly reused, as on a busy machine.
        self.pid_next = 8 + (self.pid_next - 7) % 16;
        p
    }

    /// Samples an integer count from a fractional per-round rate.
    fn count(&mut self, rate: f64) -> u32 {
        let base = rate.floor() as u32;
        base + u32::from(self.rng.gen_bool(rate.fract()))
    }

    fn remember_frame(&mut self, cpu: usize, frame: u32) {
        let q = &mut self.recent_frames[cpu];
        q.push(frame);
        if q.len() > 16 {
            q.remove(0);
        }
    }

    // ---- service wrappers (mode switched around each) --------------------

    fn os<F: FnOnce(&mut Self)>(&mut self, cpu: usize, f: F) {
        self.streams[cpu].set_mode(Mode::Os);
        f(self);
        self.streams[cpu].set_mode(Mode::User);
    }

    fn do_page_fault(&mut self, cpu: usize) {
        let total = self.rates.pf_zero + self.rates.pf_pagein + self.rates.pf_soft;
        let x = self.rng.gen_range(0.0..total);
        // The allocator prefers recently-freed frames (with probability
        // `dst_warm`), whose lines are still owned by this CPU's L2 — the
        // source of Table 3's "destination lines already in L2" row.
        let frame = if self.rng.gen_bool(self.rates.dst_warm) {
            self.recent_frames[cpu]
                .pop()
                .unwrap_or_else(|| self.alloc_frame())
        } else {
            self.alloc_frame()
        };
        let pid = self.procs[cpu].pid;
        self.streams[cpu].set_mode(Mode::Os);
        let fill = if x < self.rates.pf_zero {
            Fill::Zero
        } else if x < self.rates.pf_zero + self.rates.pf_pagein {
            let n = self.hot_buffer(cpu);
            Fill::From(self.kernel.layout.buffer_addr(n))
        } else {
            Fill::Soft
        };
        let pte_base = self.fault_cursor[cpu];
        self.fault_cursor[cpu] = (pte_base + self.rng.gen_range(1..4u32)) % 1008;
        let (kernel, rng, b) = (&self.kernel, &mut self.rng, &mut self.streams[cpu]);
        kernel.page_fault(b, rng, cpu, pid, pte_base, frame, fill);
        self.streams[cpu].set_mode(Mode::User);
        if fill != Fill::Soft {
            self.remember_frame(cpu, frame);
        }
    }

    /// A user-to-user data exchange (TRFD's "data exchanges"): the kernel
    /// copies a page the sender just produced into a peer process's
    /// receive area — the source is as warm as the sender's recent
    /// activity left it.
    fn do_user_copy(&mut self, cpu: usize) {
        let src_proc = &self.procs[cpu];
        // The sender usually exchanges its hot operand page; sometimes the
        // page it most recently streamed through.
        let src = if self.rng.gen_bool(0.7) {
            src_proc.data
        } else {
            src_proc
                .data
                .offset(64 * 1024 + (src_proc.stream_pos() & !4095) % (96 * 1024))
        };
        let peer = self.procs[(cpu + 1) % self.n_cpus].data;
        let dst = peer.offset(448 * 1024 + (cpu as u32) * 8192);
        self.streams[cpu].set_mode(Mode::Os);
        let (kernel, rng) = (&self.kernel, &mut self.rng);
        {
            let b = &mut self.streams[cpu];
            kernel.syscall_entry(b, rng, cpu, self.procs[cpu].pid);
            kernel.block_copy(
                b,
                src,
                dst,
                oscache_trace::PAGE_SIZE,
                DataClass::UserData,
                DataClass::UserData,
            );
        }
        self.streams[cpu].set_mode(Mode::User);
    }

    /// Buffer choice: file access is bursty — a process usually keeps
    /// working on the buffer it just used, sometimes another of a small
    /// hot set, occasionally something cold.
    fn hot_buffer(&mut self, cpu: usize) -> u32 {
        let x: f64 = self.rng.gen_f64();
        let b = if x < 0.68 {
            self.last_buffer[cpu]
        } else if x < 0.9 {
            self.rng.gen_range(0..3u32)
        } else {
            self.rng.gen_range(0..N_BUFFERS)
        };
        self.last_buffer[cpu] = b;
        b
    }

    /// A page copy whose source is a recently-produced block (fork-chain /
    /// copy-chain pattern): under cache-bypassing schemes its source reads
    /// become *inside reuses* (§4.1.3).
    fn do_chain_copy(&mut self, cpu: usize) {
        let Some(src) = self.recent_frames[cpu].pop() else {
            return;
        };
        let dst = self.alloc_frame();
        self.streams[cpu].set_mode(Mode::Os);
        let sa = self.kernel.layout.frame_addr(src);
        let da = self.kernel.layout.frame_addr(dst);
        let (kernel, b) = (&self.kernel, &mut self.streams[cpu]);
        kernel.block_copy(
            b,
            sa,
            da,
            oscache_trace::PAGE_SIZE,
            DataClass::PageFrame,
            DataClass::PageFrame,
        );
        self.streams[cpu].set_mode(Mode::User);
        self.remember_frame(cpu, dst);
    }

    fn do_fork(&mut self, cpu: usize) {
        let parent = self.procs[cpu].pid;
        let child = self.alloc_pid();
        let npages = self
            .rng
            .gen_range(self.rates.fork_pages.0..=self.rates.fork_pages.1);
        // Fork copies the parent's writable pages — the pages its user
        // code has actually been touching, so the source is naturally as
        // warm as the parent's recent activity left it (Table 3 row 1).
        // The child's pages are its own address space; with the recycled
        // pid space, the destination of one fork becomes the source of a
        // later one (§4.1.3's fork-chain pattern).
        let parent_base = self.procs[cpu].data;
        let child_base = self.kernel.layout.user_data(child);
        self.streams[cpu].set_mode(Mode::Os);
        let (kernel, rng) = (&self.kernel, &mut self.rng);
        kernel.fork_pages(
            &mut self.streams[cpu],
            rng,
            cpu,
            parent,
            child,
            parent_base,
            child_base,
            npages,
        );
        self.streams[cpu].set_mode(Mode::User);
    }

    fn do_exec(&mut self, cpu: usize) {
        let pid = self.alloc_pid();
        let frame_base = self.frame_next;
        let text = 1;
        let zero = 1;
        for _ in 0..(text + zero) {
            self.alloc_frame();
        }
        self.streams[cpu].set_mode(Mode::Os);
        let (kernel, rng, b) = (&self.kernel, &mut self.rng, &mut self.streams[cpu]);
        kernel.exec_load(b, rng, cpu, pid, text, zero, frame_base);
        self.streams[cpu].set_mode(Mode::User);
        self.procs[cpu] = UserProc::new(&self.kernel, pid);
        for k in 0..(text + zero) {
            self.remember_frame(cpu, (frame_base + k) % N_FRAMES);
        }
    }

    fn do_syscall(&mut self, cpu: usize) {
        self.os(cpu, |s| {
            let pid = s.procs[cpu].pid;
            let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[cpu]);
            kernel.syscall_entry(b, rng, cpu, pid);
        });
    }

    fn do_file_op(&mut self, cpu: usize, medium: bool) {
        let len = if medium {
            self.rng.gen_range(128..512u32) * 8 // 1–4 KB
        } else {
            self.rng.gen_range(8..64u32) * 8 // 64–512 B
        };
        let read = self.rng.gen_bool(0.65);
        let buf_n = self.hot_buffer(cpu);
        self.os(cpu, |s| {
            let pid = s.procs[cpu].pid;
            let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[cpu]);
            kernel.syscall_entry(b, rng, cpu, pid);
            if read {
                kernel.file_read(b, rng, cpu, pid, len, buf_n);
            } else {
                kernel.file_write(b, rng, cpu, pid, len, buf_n);
            }
        });
    }

    fn do_ctx_switch(&mut self, cpu: usize) {
        let to = self.rng.gen_range(4..24u32);
        self.os(cpu, |s| {
            let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[cpu]);
            kernel.context_switch(b, rng, cpu, to);
        });
    }

    fn do_timer(&mut self, cpu: usize) {
        self.os(cpu, |s| {
            let pid = s.procs[cpu].pid;
            let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[cpu]);
            kernel.timer_tick(b, rng, cpu, pid);
        });
    }

    fn gang_barrier(&mut self, round: u32) {
        let k = (round as usize) % N_BARRIERS;
        let addr = self.kernel.layout.barrier_addr(k);
        for cpu in 0..self.n_cpus {
            self.streams[cpu].set_mode(Mode::Os);
            self.streams[cpu].barrier(BarrierId(k as u16), addr, self.n_cpus as u8);
            self.streams[cpu].set_mode(Mode::User);
        }
    }

    fn xproc_round(&mut self) {
        if self.n_cpus < 2 {
            return;
        }
        let n = self.count(self.rates.xproc_pairs);
        for _ in 0..n {
            let sender = self.rng.gen_range(0..self.n_cpus);
            let mut target = self.rng.gen_range(0..self.n_cpus);
            if target == sender {
                target = (target + 1) % self.n_cpus;
            }
            self.os(sender, |s| {
                let (kernel, b) = (&s.kernel, &mut s.streams[sender]);
                kernel.xproc_send(b, target);
            });
            self.os(target, |s| {
                let (kernel, b) = (&s.kernel, &mut s.streams[target]);
                kernel.xproc_handle(b, target);
                let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[target]);
                kernel.xproc_body(b, rng, target);
            });
        }
    }

    fn user_segment(&mut self, cpu: usize, steps: u32, round: u32) {
        // Which program runs on this CPU this round is workload-specific.
        enum Prog {
            Trfd,
            Arc2d,
            Cc1,
            Fsck,
            Shell,
        }
        let prog = match self.workload {
            Workload::Trfd4 => Prog::Trfd,
            Workload::TrfdMake => {
                if round.is_multiple_of(self.rates.gang_every) {
                    Prog::Trfd
                } else {
                    Prog::Cc1
                }
            }
            Workload::Arc2dFsck => {
                if round % 3 == 2 && cpu == (round as usize / 3) % self.n_cpus {
                    Prog::Fsck
                } else {
                    Prog::Arc2d
                }
            }
            Workload::Shell => Prog::Shell,
        };
        let p = &mut self.procs[cpu];
        let b = &mut self.streams[cpu];
        for _ in 0..steps {
            match prog {
                Prog::Trfd => p.trfd_step(b, &self.users.trfd),
                Prog::Arc2d => p.arc2d_step(b, &self.users.arc2d, &mut self.rng),
                Prog::Cc1 => p.cc1_step(b, &self.users.cc1, &mut self.rng),
                Prog::Fsck => p.fsck_step(b, &self.users.fsck, &mut self.rng),
                Prog::Shell => p.shell_step(b, &self.users.shell, &mut self.rng),
            }
        }
    }

    fn round(&mut self, r: u32) {
        let rates = self.rates;
        let gang = rates.gang_every > 0 && r.is_multiple_of(rates.gang_every);
        // Round preamble: context switches, gang barrier.
        for cpu in 0..self.n_cpus {
            for _ in 0..rates.ctx_switches {
                self.do_ctx_switch(cpu);
            }
        }
        if gang {
            self.gang_barrier(r);
        }
        // Pre-sample per-CPU service counts for this round.
        let steps_per_seg = (rates.user_steps / rates.segments).max(1);
        for seg in 0..rates.segments {
            for cpu in 0..self.n_cpus {
                self.user_segment(cpu, steps_per_seg, r);
                // System calls happen throughout the quantum.
                for _ in 0..self.count(rates.syscalls / f64::from(rates.segments)) {
                    self.do_syscall(cpu);
                }
                // Paging and process-management activity clusters in one
                // burst per CPU per round, so a CPU's consecutive
                // allocation-lock acquisitions keep the lock line local
                // (the paper: "most operating system locks tend to be
                // acquired several times in a row by the same processor").
                if seg == (cpu as u32 + r) % rates.segments {
                    let pf = rates.pf_zero + rates.pf_pagein + rates.pf_soft;
                    for _ in 0..self.count(pf) {
                        self.do_page_fault(cpu);
                    }
                    for _ in 0..self.count(rates.chain_copy) {
                        self.do_chain_copy(cpu);
                    }
                    for _ in 0..self.count(rates.user_copy) {
                        self.do_user_copy(cpu);
                    }
                    for _ in 0..self.count(rates.forks) {
                        self.do_fork(cpu);
                    }
                    for _ in 0..self.count(rates.execs) {
                        self.do_exec(cpu);
                    }
                }
                // File activity clusters in a different burst.
                if seg == (cpu as u32 + r + rates.segments / 2) % rates.segments {
                    for _ in 0..self.count(rates.file_small) {
                        self.do_file_op(cpu, false);
                    }
                    for _ in 0..self.count(rates.file_med) {
                        self.do_file_op(cpu, true);
                    }
                }
            }
            // Mid-round gang barriers (TRFD is synchronization-intensive;
            // several barriers may fall between two segments).
            if gang && seg > 0 {
                let per_seg = rates.extra_barriers / (rates.segments - 1);
                let extra = u32::from(seg <= rates.extra_barriers % (rates.segments - 1));
                for k in 0..per_seg + extra {
                    self.gang_barrier(r + seg + k);
                }
            }
        }
        self.xproc_round();
        for cpu in 0..self.n_cpus {
            self.do_timer(cpu);
            let jitter = self.rng.gen_range(0..rates.idle_cycles / 4 + 1);
            self.streams[cpu].idle(rates.idle_cycles + jitter);
        }
        // Periodic pager sweep (reads all counters: §5.1's aggregate use).
        if r % 6 == 3 {
            let cpu = (r as usize / 6) % self.n_cpus;
            self.os(cpu, |s| {
                let (kernel, rng, b) = (&s.kernel, &mut s.rng, &mut s.streams[cpu]);
                kernel.pager_sweep(b, rng);
            });
        }
    }

    fn take_meta(&mut self) -> TraceMeta {
        let l = &self.kernel.layout;
        let kernel_data = vec![
            (l.static_base, 4 * oscache_trace::PAGE_SIZE),
            (
                l.proc_table,
                oscache_kernel::N_PROCS as u32 * oscache_kernel::PROC_ENTRY_SIZE,
            ),
            (
                l.page_tables,
                oscache_kernel::N_PROCS as u32 * oscache_kernel::PTES_PER_PROC * 4,
            ),
            (l.kstacks, 32 * oscache_trace::PAGE_SIZE),
            (l.runq_nodes, 16 * oscache_trace::PAGE_SIZE),
            (l.buffer_cache, N_BUFFERS * oscache_trace::PAGE_SIZE),
        ];
        TraceMeta {
            workload: self.workload.name().to_string(),
            code: std::mem::take(&mut self.code),
            vars: self.kernel.layout.vars.clone(),
            kernel_data,
        }
    }

    fn run(mut self) -> Trace {
        for r in 0..self.rounds {
            self.round(r);
        }
        let meta = self.take_meta();
        let mut trace = Trace::new(self.n_cpus, meta);
        for (k, s) in self.streams.into_iter().enumerate() {
            trace.streams[k] = s.finish();
        }
        trace
    }

    fn run_chunked(mut self) -> ChunkedTrace {
        for r in 0..self.rounds {
            self.round(r);
        }
        let meta = self.take_meta();
        let mut trace = ChunkedTrace::new(self.n_cpus, meta);
        for (k, s) in self.streams.into_iter().enumerate() {
            trace.streams[k] = s.finish_chunked();
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscache_trace::Event;

    fn small(w: Workload) -> Trace {
        build(
            w,
            BuildOptions {
                scale: 0.05,
                seed: 1,
                ..Default::default()
            },
        )
    }

    #[test]
    fn all_workloads_build() {
        for w in Workload::all() {
            let t = small(w);
            assert_eq!(t.n_cpus(), 4);
            assert!(t.total_events() > 1000, "{w}: too few events");
            assert_eq!(t.meta.workload, w.name());
        }
    }

    #[test]
    fn spilled_build_equals_in_memory_build() {
        let opts = BuildOptions {
            scale: 0.05,
            seed: 1,
            ..Default::default()
        };
        let w = Workload::Trfd4;
        let key = opts.key(w);
        assert_eq!(
            key.options().key(w),
            key,
            "TraceBuildKey::options must invert key"
        );
        let inline = build_chunked(w, opts);
        let store = oscache_trace::SpillStore::create(
            "workload-spill-test",
            oscache_trace::StoreIdentity {
                scale_bits: key.scale_bits,
                seed: key.seed,
                n_cpus: key.n_cpus as u32,
            },
            opts.n_cpus,
            None,
        )
        .expect("spill store");
        let budget = oscache_trace::MemBudget::new_mb(0);
        let spilled = build_chunked_spilled(w, opts, &store, &budget);
        assert!(spilled.spilled_chunks() > 0, "nothing spilled at 0 budget");
        assert_eq!(spilled.total_events(), inline.total_events());
        for cpu in 0..opts.n_cpus {
            assert_eq!(spilled.streams[cpu], inline.streams[cpu], "cpu {cpu}");
        }
        assert_eq!(budget.spilled_bytes(), inline.byte_len() as u64);
    }

    #[test]
    fn chunked_build_decodes_to_flat_build() {
        for w in [Workload::Trfd4, Workload::Shell] {
            let opts = BuildOptions {
                scale: 0.05,
                seed: 1,
                ..Default::default()
            };
            let flat = build(w, opts);
            let chunked = build_chunked(w, opts);
            assert_eq!(chunked.n_cpus(), flat.n_cpus());
            assert_eq!(chunked.total_events(), flat.total_events());
            assert_eq!(chunked.meta.workload, flat.meta.workload);
            assert_eq!(chunked.meta.vars.len(), flat.meta.vars.len());
            assert_eq!(chunked.meta.kernel_data, flat.meta.kernel_data);
            for cpu in 0..flat.n_cpus() {
                let decoded: Vec<Event> = chunked.streams[cpu].iter().collect();
                assert_eq!(decoded, flat.streams[cpu].events(), "{w} cpu {cpu}");
            }
            assert_eq!(chunked.validate(), Ok(()));
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = small(Workload::Shell);
        let b = small(Workload::Shell);
        assert_eq!(a.total_events(), b.total_events());
        for cpu in 0..4 {
            assert_eq!(a.streams[cpu].events(), b.streams[cpu].events());
        }
    }

    #[test]
    fn barriers_are_consistent_across_cpus() {
        for w in Workload::all() {
            let t = small(w);
            let counts: Vec<usize> = t
                .streams
                .iter()
                .map(|s| {
                    s.events()
                        .iter()
                        .filter(|e| matches!(e, Event::Barrier { .. }))
                        .count()
                })
                .collect();
            assert!(
                counts.iter().all(|&c| c == counts[0]),
                "{w}: barrier counts differ: {counts:?}"
            );
        }
    }

    #[test]
    fn trfd4_has_mostly_page_sized_blocks() {
        let t = build(
            Workload::Trfd4,
            BuildOptions {
                scale: 0.2,
                seed: 2,
                ..Default::default()
            },
        );
        let mut page = 0u32;
        let mut other = 0u32;
        for s in &t.streams {
            for e in s.events() {
                if let Event::BlockOpBegin { op } = e {
                    if op.is_page_sized() {
                        page += 1;
                    } else {
                        other += 1;
                    }
                }
            }
        }
        assert!(page > 4 * other, "page {page} vs other {other}");
    }

    #[test]
    fn shell_has_mostly_small_blocks() {
        let t = build(
            Workload::Shell,
            BuildOptions {
                scale: 0.2,
                seed: 2,
                ..Default::default()
            },
        );
        let mut small_ops = 0u32;
        let mut total = 0u32;
        for s in &t.streams {
            for e in s.events() {
                if let Event::BlockOpBegin { op } = e {
                    total += 1;
                    if op.len < 1024 {
                        small_ops += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            f64::from(small_ops) / f64::from(total) > 0.45,
            "small {small_ops}/{total}"
        );
    }

    #[test]
    fn scale_controls_size() {
        let s1 = small(Workload::Trfd4).total_events();
        let s2 = build(
            Workload::Trfd4,
            BuildOptions {
                scale: 0.1,
                seed: 1,
                ..Default::default()
            },
        )
        .total_events();
        assert!(s2 > s1, "{s2} should exceed {s1}");
    }

    #[test]
    fn modes_alternate_and_locks_balance() {
        // finish() inside build() already asserts lock balance; check that
        // both modes appear.
        let t = small(Workload::TrfdMake);
        for s in &t.streams {
            let os = s
                .events()
                .iter()
                .any(|e| matches!(e, Event::SetMode { mode: Mode::Os }));
            let user = s
                .events()
                .iter()
                .any(|e| matches!(e, Event::SetMode { mode: Mode::User }));
            assert!(os && user);
        }
    }
}
