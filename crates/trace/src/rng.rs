//! Deterministic pseudo-random numbers for workload synthesis and tests.
//!
//! The simulator needs reproducible randomness (workload builders, property
//! tests, fault injection) but no cryptographic strength, so this module
//! carries a small self-contained SplitMix64 generator instead of an
//! external dependency. The API mirrors the subset of `rand` the codebase
//! uses: a dyn-compatible [`RngCore`] source trait and an extension trait
//! [`Rng`] with `gen_bool`/`gen_range` conveniences.

use std::ops::{Range, RangeInclusive};

/// A source of raw random 64-bit words. Dyn-compatible.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A half-open or inclusive range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    // Widening-multiply range reduction. The bias is below 2^-32 for the
    // 32-bit spans used here — irrelevant for workload synthesis.
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

impl SampleRange<u32> for Range<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u64(rng, u64::from(self.end - self.start)) as u32
    }
}

impl SampleRange<u32> for RangeInclusive<u32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + uniform_u64(rng, u64::from(end - start) + 1) as u32
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_u64(rng, (self.end - self.start) as u64) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen_f64() < p
    }

    /// A uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A small, fast, seedable SplitMix64 generator.
///
/// Deterministic across platforms and releases: the same seed always
/// yields the same stream, which the workload builders and fault-injection
/// tests rely on.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let u = r.gen_range(10..20u32);
            assert!((10..20).contains(&u));
            let v = r.gen_range(3..=5u32);
            assert!((3..=5).contains(&v));
            let w = r.gen_range(0..4usize);
            assert!(w < 4);
            let f = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn works_through_dyn_and_reborrow() {
        let mut r = SmallRng::seed_from_u64(3);
        let d: &mut dyn RngCore = &mut r;
        let pick = |rng: &mut dyn RngCore| rng.gen_range(0..16u32);
        let v = pick(d);
        assert!(v < 16);
        // extension trait usable through a plain mutable reference
        fn takes_impl(rng: &mut impl Rng) -> bool {
            rng.gen_bool(0.5)
        }
        let _ = takes_impl(&mut r);
    }

    #[test]
    fn rough_uniformity() {
        let mut r = SmallRng::seed_from_u64(1234);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[r.gen_range(0..8usize)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "skewed bucket: {buckets:?}");
        }
    }
}
