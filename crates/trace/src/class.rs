//! Data-structure attribution for memory references.
//!
//! The paper maps "the large majority" of data accesses to the kernel data
//! structure being accessed (§2.2) and uses that attribution to break down
//! coherence misses (Table 5) and to drive the software optimizations (§5).
//! [`DataClass`] carries the same attribution on every generated reference.

use std::fmt;

/// The kernel or user data structure a memory reference touches.
///
/// Classes are chosen to cover every structure the paper names:
/// `vmmeter.v_intr`-style event counters, `freelist.size`, `cpievents`,
/// barriers, the 10 hottest kernel locks, system-resource pointers, page
/// tables, the process table, scheduler queues, the system-call table, the
/// high-resolution timer, and the buffer cache, plus generic kernel/user
/// data and block-operation payloads.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[non_exhaustive]
pub enum DataClass {
    /// Barrier synchronization variables (gang-scheduling barriers, §5).
    BarrierVar,
    /// Kernel spin locks (accounting, physical memory allocation, job
    /// scheduling, high-resolution timer, §5).
    LockVar,
    /// Infrequently-communicated event counters: updated often by every CPU,
    /// read rarely (e.g. `vmmeter.v_intr`, §5).
    InfreqCounter,
    /// Frequently-shared variables with (partial) producer-consumer
    /// behaviour (e.g. system-resource-table process pointers, §5).
    FreqShared,
    /// `freelist` bookkeeping (`freelist.size`, free-page list head).
    Freelist,
    /// `cpievents`: per-interrupt information on cross-processor interrupts.
    CpiEvents,
    /// Page-table entries.
    PageTable,
    /// Process-table entries.
    ProcTable,
    /// Scheduler run-queue nodes.
    RunQueue,
    /// The table of system-call handler functions (§6, prefetchable).
    SyscallTable,
    /// The high-resolution-timer / accounting data structure (§6).
    TimerStruct,
    /// File-system buffer cache payloads.
    BufferCache,
    /// Kernel stacks.
    KernelStack,
    /// Any other statically- or dynamically-allocated kernel data.
    KernelOther,
    /// Physical page frames moved by page-sized block operations
    /// (fork copies, page zeroing).
    PageFrame,
    /// User-level application data.
    UserData,
    /// User stacks.
    UserStack,
}

impl DataClass {
    /// Whether references of this class are operating-system references when
    /// the CPU is in kernel mode. (User classes can also be touched by the
    /// kernel, e.g. `copyout`; OS/user attribution in the simulator is by
    /// execution *mode*, matching the paper, not by class.)
    #[inline]
    pub fn is_kernel_structure(self) -> bool {
        !matches!(self, DataClass::UserData | DataClass::UserStack)
    }

    /// The coherence-miss category this class belongs to in Table 5.
    #[inline]
    pub fn coherence_category(self) -> CoherenceCategory {
        match self {
            DataClass::BarrierVar => CoherenceCategory::Barriers,
            DataClass::LockVar => CoherenceCategory::Locks,
            DataClass::InfreqCounter => CoherenceCategory::InfreqComm,
            DataClass::FreqShared | DataClass::Freelist | DataClass::CpiEvents => {
                CoherenceCategory::FreqShared
            }
            _ => CoherenceCategory::Other,
        }
    }

    /// Whether this class is a synchronization variable (lock or barrier).
    #[inline]
    pub fn is_sync(self) -> bool {
        matches!(self, DataClass::BarrierVar | DataClass::LockVar)
    }

    /// All classes, for exhaustive iteration in tests and reports.
    pub fn all() -> &'static [DataClass] {
        use DataClass::*;
        &[
            BarrierVar,
            LockVar,
            InfreqCounter,
            FreqShared,
            Freelist,
            CpiEvents,
            PageTable,
            ProcTable,
            RunQueue,
            SyscallTable,
            TimerStruct,
            BufferCache,
            KernelStack,
            KernelOther,
            PageFrame,
            UserData,
            UserStack,
        ]
    }
}

impl fmt::Display for DataClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Coherence-miss breakdown categories of Table 5.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CoherenceCategory {
    /// Barrier synchronization (35–46% of coherence misses except Shell).
    Barriers,
    /// Infrequently-communicated variables (counters; 20–25%).
    InfreqComm,
    /// Frequently-shared variables (10–25%).
    FreqShared,
    /// Kernel locks (2–19%).
    Locks,
    /// Everything else, including false sharing (12–26%).
    Other,
}

impl CoherenceCategory {
    /// All categories in Table 5 row order.
    pub fn all() -> &'static [CoherenceCategory] {
        &[
            CoherenceCategory::Barriers,
            CoherenceCategory::InfreqComm,
            CoherenceCategory::FreqShared,
            CoherenceCategory::Locks,
            CoherenceCategory::Other,
        ]
    }

    /// The row label used in Table 5.
    pub fn label(self) -> &'static str {
        match self {
            CoherenceCategory::Barriers => "Barriers",
            CoherenceCategory::InfreqComm => "Infreq. Com.",
            CoherenceCategory::FreqShared => "Freq. Shared",
            CoherenceCategory::Locks => "Locks",
            CoherenceCategory::Other => "Other",
        }
    }
}

impl fmt::Display for CoherenceCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_classes_map_to_sync_categories() {
        assert_eq!(
            DataClass::BarrierVar.coherence_category(),
            CoherenceCategory::Barriers
        );
        assert_eq!(
            DataClass::LockVar.coherence_category(),
            CoherenceCategory::Locks
        );
        assert!(DataClass::BarrierVar.is_sync());
        assert!(DataClass::LockVar.is_sync());
        assert!(!DataClass::PageTable.is_sync());
    }

    #[test]
    fn paper_examples_map_to_freq_shared() {
        // freelist.size and cpievents are the paper's §5.2 update-set examples.
        assert_eq!(
            DataClass::Freelist.coherence_category(),
            CoherenceCategory::FreqShared
        );
        assert_eq!(
            DataClass::CpiEvents.coherence_category(),
            CoherenceCategory::FreqShared
        );
    }

    #[test]
    fn user_classes_are_not_kernel_structures() {
        assert!(!DataClass::UserData.is_kernel_structure());
        assert!(!DataClass::UserStack.is_kernel_structure());
        assert!(DataClass::PageTable.is_kernel_structure());
    }

    #[test]
    fn all_lists_are_exhaustive_and_unique() {
        let all = DataClass::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(CoherenceCategory::all().len(), 5);
    }

    #[test]
    fn every_class_has_a_category() {
        for &c in DataClass::all() {
            // must not panic; counters land in InfreqComm
            let _ = c.coherence_category();
        }
        assert_eq!(
            DataClass::InfreqCounter.coherence_category(),
            CoherenceCategory::InfreqComm
        );
    }
}
