//! Address and identifier newtypes shared across the workspace.

use std::fmt;

/// Size of a virtual-memory page, in bytes (4 KB, as on the Alliant FX/8).
pub const PAGE_SIZE: u32 = 4096;

/// Size of a machine word, in bytes. Scalar loads and stores move one word.
pub const WORD_SIZE: u32 = 4;

/// A 32-bit physical memory address.
///
/// The paper's performance monitor records 32-bit physical addresses; all
/// kernel data structures live at fixed physical addresses (kernel virtual
/// and physical addresses coincide on the traced machine, §2.2), so a single
/// flat physical address space suffices.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u32);

impl Addr {
    /// Returns the address of the cache line containing `self` for the given
    /// line size (which must be a power of two).
    #[inline]
    pub fn line(self, line_size: u32) -> LineAddr {
        debug_assert!(line_size.is_power_of_two());
        LineAddr(self.0 & !(line_size - 1))
    }

    /// Returns the page number of this address.
    #[inline]
    pub fn page(self) -> u32 {
        self.0 / PAGE_SIZE
    }

    /// Returns the offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> u32 {
        self.0 % PAGE_SIZE
    }

    /// Returns this address displaced by `delta` bytes.
    #[inline]
    pub fn offset(self, delta: u32) -> Addr {
        Addr(self.0.wrapping_add(delta))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#010x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl From<u32> for Addr {
    fn from(raw: u32) -> Self {
        Addr(raw)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// The address of the first byte of a cache line.
///
/// A `LineAddr` is only meaningful together with the line size used to
/// produce it; see [`Addr::line`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u32);

impl LineAddr {
    /// The first byte address of this line.
    #[inline]
    pub fn addr(self) -> Addr {
        Addr(self.0)
    }

    /// The page number of this line.
    #[inline]
    pub fn page(self) -> u32 {
        self.0 / PAGE_SIZE
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineAddr({:#010x})", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

/// Identifier of one of the simulated processors (0..N, N = 4 in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CpuId(pub u8);

impl CpuId {
    /// The processor index as a `usize`, for indexing per-CPU tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_masks_low_bits() {
        assert_eq!(Addr(0x1234).line(16), LineAddr(0x1230));
        assert_eq!(Addr(0x1234).line(32), LineAddr(0x1220));
        assert_eq!(Addr(0x1240).line(64), LineAddr(0x1240));
    }

    #[test]
    fn line_of_line_start_is_identity() {
        let a = Addr(0xabc0);
        assert_eq!(a.line(16).addr(), a);
    }

    #[test]
    fn page_and_offset_roundtrip() {
        let a = Addr(5 * PAGE_SIZE + 123);
        assert_eq!(a.page(), 5);
        assert_eq!(a.page_offset(), 123);
        assert_eq!(Addr(a.page() * PAGE_SIZE + a.page_offset()), a);
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(Addr(u32::MAX).offset(1), Addr(0));
        assert_eq!(Addr(100).offset(28), Addr(128));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr(0x10).to_string(), "0x00000010");
        assert_eq!(CpuId(3).to_string(), "cpu3");
    }

    #[test]
    fn line_page_matches_addr_page() {
        let a = Addr(7 * PAGE_SIZE + 900);
        assert_eq!(a.line(32).page(), a.page());
    }
}
