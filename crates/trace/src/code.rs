//! Basic-block code layout.
//!
//! The paper reconstructs the full instruction stream from escape references
//! inserted at every basic block (§2.2), which lets its simulator model the
//! instruction cache and lets the authors attribute data misses to the source
//! statements that cause them (the *miss hot spots* of §6). We model code as
//! a set of basic blocks, each with an instruction-address range and a parent
//! *site* (an OS routine or loop/sequence within one), so the simulator can
//! replay instruction fetches and the analysis pass can rank sites by misses.

use crate::Addr;
use std::fmt;

/// Identifier of a basic block in a [`CodeLayout`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a *site*: a named routine, loop, or basic-block sequence.
///
/// Sites are the granularity of the paper's hot-spot analysis: "5 loops and
/// 7 sequences" account for 22–51% of the remaining OS data misses (§6).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SiteId(pub u16);

impl SiteId {
    /// The site index as a `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A straight-line run of instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Number of instructions in the block.
    pub instrs: u32,
    /// Bytes per instruction (4 on the modelled machine).
    pub instr_size: u32,
    /// The site this block belongs to.
    pub site: SiteId,
}

impl BasicBlock {
    /// Total size of the block in bytes.
    #[inline]
    pub fn len_bytes(&self) -> u32 {
        self.instrs * self.instr_size
    }

    /// Address one past the last instruction byte.
    #[inline]
    pub fn end(&self) -> Addr {
        self.start.offset(self.len_bytes())
    }
}

/// Descriptive information about a site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteInfo {
    /// Human-readable name, e.g. `"pte_init_loop"`.
    pub name: &'static str,
    /// Whether the site is a loop (§6 distinguishes loops, which get
    /// unrolled+pipelined prefetching, from sequences, which get hoisted
    /// prefetches).
    pub is_loop: bool,
}

/// The code map: every basic block of kernel and user code.
///
/// `CodeLayout` is append-only; generators allocate blocks while building a
/// trace and the resulting layout travels with the [`crate::Trace`].
#[derive(Clone, Debug, Default)]
pub struct CodeLayout {
    blocks: Vec<BasicBlock>,
    sites: Vec<SiteInfo>,
}

impl CodeLayout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a site and returns its id.
    pub fn add_site(&mut self, name: &'static str, is_loop: bool) -> SiteId {
        let id = SiteId(u16::try_from(self.sites.len()).expect("too many sites"));
        self.sites.push(SiteInfo { name, is_loop });
        id
    }

    /// Registers a basic block and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `site` was not created by [`CodeLayout::add_site`] on this
    /// layout, or if `instrs` is zero.
    pub fn add_block(&mut self, start: Addr, instrs: u32, site: SiteId) -> BlockId {
        assert!(instrs > 0, "basic block must contain instructions");
        assert!(site.index() < self.sites.len(), "unknown site {site:?}");
        let id = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
        self.blocks.push(BasicBlock {
            start,
            instrs,
            instr_size: 4,
            site,
        });
        id
    }

    /// Looks up a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a block of this layout.
    #[inline]
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.index()]
    }

    /// Looks up a block, returning `None` when `id` is not a block of this
    /// layout (the non-panicking lookup replay paths use on trace-derived
    /// ids).
    #[inline]
    pub fn try_block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.get(id.index())
    }

    /// Looks up a site's description.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a site of this layout.
    #[inline]
    pub fn site(&self, id: SiteId) -> &SiteInfo {
        &self.sites[id.index()]
    }

    /// Number of registered basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs.
    pub fn blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }

    /// Iterates over `(SiteId, &SiteInfo)` pairs.
    pub fn sites(&self) -> impl Iterator<Item = (SiteId, &SiteInfo)> {
        self.sites
            .iter()
            .enumerate()
            .map(|(i, s)| (SiteId(i as u16), s))
    }
}

impl fmt::Display for CodeLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CodeLayout({} blocks, {} sites)",
            self.blocks.len(),
            self.sites.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = CodeLayout::new();
        let s = c.add_site("sched", false);
        let b = c.add_block(Addr(0x1000), 8, s);
        assert_eq!(c.block(b).start, Addr(0x1000));
        assert_eq!(c.block(b).len_bytes(), 32);
        assert_eq!(c.block(b).end(), Addr(0x1020));
        assert_eq!(c.site(s).name, "sched");
        assert_eq!(c.block_count(), 1);
        assert_eq!(c.site_count(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn block_with_foreign_site_panics() {
        let mut c = CodeLayout::new();
        c.add_block(Addr(0), 1, SiteId(3));
    }

    #[test]
    #[should_panic(expected = "must contain instructions")]
    fn empty_block_panics() {
        let mut c = CodeLayout::new();
        let s = c.add_site("x", false);
        c.add_block(Addr(0), 0, s);
    }

    #[test]
    fn iteration_yields_ids_in_order() {
        let mut c = CodeLayout::new();
        let s = c.add_site("a", true);
        for i in 0..5 {
            c.add_block(Addr(i * 64), 4, s);
        }
        let ids: Vec<u32> = c.blocks().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
        assert!(c.sites().all(|(_, info)| info.is_loop));
    }
}
