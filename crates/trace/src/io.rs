//! Trace serialization.
//!
//! The paper's performance monitor dumps its trace buffers to disk so that
//! "an unbounded continuous stretch of the workload" can be traced and
//! re-simulated later (§2.1). This module provides the equivalent: a
//! line-oriented text format that round-trips a full [`Trace`] — events,
//! code layout, kernel-variable map, and kernel data ranges.
//!
//! The format is versioned, deliberately simple, and diff-friendly:
//!
//! ```text
//! oscache-trace 1
//! workload TRFD_4
//! cpus 4
//! site pgfault_entry seq
//! block 10000 18 0
//! var 1000000 4 InfreqCounter counter - vmmeter.v_intr
//! range 1000000 4000
//! stream 0
//! M os
//! E 0
//! R 1000000 InfreqCounter
//! ...
//! end
//! ```

use crate::{
    Addr, BarrierId, BlockId, BlockKind, BlockOp, ChunkedStreamBuilder, ChunkedTrace, CodeLayout,
    DataClass, Event, KernelVar, LockId, Mode, SiteId, Trace, TraceError, TraceMeta, VarRole,
};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Errors produced while reading a serialized trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a valid trace dump; `line` is the 1-based offending
    /// line and `msg` describes the problem.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong on that line.
        msg: String,
    },
    /// The input ended before the trailing `end` marker: the dump was cut
    /// off mid-stream (partial copy, interrupted writer). Distinct from
    /// [`ReadTraceError::Parse`] so callers can suggest re-dumping instead
    /// of pointing at a malformed line.
    Truncated {
        /// 1-based line number where the input ended.
        line: usize,
    },
    /// The dump parsed, but the resulting trace violates a structural
    /// invariant (see [`TraceError`]).
    Invalid(TraceError),
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Parse { line, msg } => {
                write!(f, "malformed trace dump: line {line}: {msg}")
            }
            ReadTraceError::Truncated { line } => write!(
                f,
                "truncated trace dump: input ended at line {line} without the `end` marker"
            ),
            ReadTraceError::Invalid(e) => write!(f, "invalid trace: {e}"),
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            ReadTraceError::Parse { .. } | ReadTraceError::Truncated { .. } => None,
            ReadTraceError::Invalid(e) => Some(e),
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

impl From<TraceError> for ReadTraceError {
    fn from(e: TraceError) -> Self {
        ReadTraceError::Invalid(e)
    }
}

fn class_name(c: DataClass) -> &'static str {
    match c {
        DataClass::BarrierVar => "BarrierVar",
        DataClass::LockVar => "LockVar",
        DataClass::InfreqCounter => "InfreqCounter",
        DataClass::FreqShared => "FreqShared",
        DataClass::Freelist => "Freelist",
        DataClass::CpiEvents => "CpiEvents",
        DataClass::PageTable => "PageTable",
        DataClass::ProcTable => "ProcTable",
        DataClass::RunQueue => "RunQueue",
        DataClass::SyscallTable => "SyscallTable",
        DataClass::TimerStruct => "TimerStruct",
        DataClass::BufferCache => "BufferCache",
        DataClass::KernelStack => "KernelStack",
        DataClass::KernelOther => "KernelOther",
        DataClass::PageFrame => "PageFrame",
        DataClass::UserData => "UserData",
        DataClass::UserStack => "UserStack",
    }
}

fn parse_class(s: &str) -> Option<DataClass> {
    Some(match s {
        "BarrierVar" => DataClass::BarrierVar,
        "LockVar" => DataClass::LockVar,
        "InfreqCounter" => DataClass::InfreqCounter,
        "FreqShared" => DataClass::FreqShared,
        "Freelist" => DataClass::Freelist,
        "CpiEvents" => DataClass::CpiEvents,
        "PageTable" => DataClass::PageTable,
        "ProcTable" => DataClass::ProcTable,
        "RunQueue" => DataClass::RunQueue,
        "SyscallTable" => DataClass::SyscallTable,
        "TimerStruct" => DataClass::TimerStruct,
        "BufferCache" => DataClass::BufferCache,
        "KernelStack" => DataClass::KernelStack,
        "KernelOther" => DataClass::KernelOther,
        "PageFrame" => DataClass::PageFrame,
        "UserData" => DataClass::UserData,
        "UserStack" => DataClass::UserStack,
        _ => return None,
    })
}

fn role_name(r: VarRole) -> String {
    match r {
        VarRole::Counter => "counter".into(),
        VarRole::Barrier => "barrier".into(),
        VarRole::Lock => "lock".into(),
        VarRole::FreqShared { producer_consumer } => {
            if producer_consumer {
                "freq-pc".into()
            } else {
                "freq".into()
            }
        }
        VarRole::Plain => "plain".into(),
    }
}

fn parse_role(s: &str) -> Option<VarRole> {
    Some(match s {
        "counter" => VarRole::Counter,
        "barrier" => VarRole::Barrier,
        "lock" => VarRole::Lock,
        "freq-pc" => VarRole::FreqShared {
            producer_consumer: true,
        },
        "freq" => VarRole::FreqShared {
            producer_consumer: false,
        },
        "plain" => VarRole::Plain,
        _ => return None,
    })
}

/// Writes `trace` in the versioned text format.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use oscache_trace::{read_trace, write_trace, Trace, TraceMeta};
///
/// let trace = Trace::new(4, TraceMeta::default());
/// let mut buf = Vec::new();
/// write_trace(&trace, &mut buf)?;
/// let back = read_trace(&buf[..])?;
/// assert_eq!(back.n_cpus(), 4);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "oscache-trace 1")?;
    writeln!(w, "workload {}", trace.meta.workload)?;
    writeln!(w, "cpus {}", trace.n_cpus())?;
    for (_, s) in trace.meta.code.sites() {
        writeln!(
            w,
            "site {} {}",
            s.name,
            if s.is_loop { "loop" } else { "seq" }
        )?;
    }
    for (_, b) in trace.meta.code.blocks() {
        writeln!(w, "block {:x} {} {}", b.start.0, b.instrs, b.site.0)?;
    }
    for v in &trace.meta.vars {
        writeln!(
            w,
            "var {:x} {} {} {} {} {}",
            v.addr.0,
            v.size,
            class_name(v.class),
            role_name(v.role),
            v.false_shared_group
                .map(|g| g.to_string())
                .unwrap_or_else(|| "-".into()),
            v.name
        )?;
    }
    for &(base, len) in &trace.meta.kernel_data {
        writeln!(w, "range {:x} {:x}", base.0, len)?;
    }
    for (cpu, stream) in trace.streams.iter().enumerate() {
        writeln!(w, "stream {cpu}")?;
        for e in stream.events() {
            match *e {
                Event::Exec { block } => writeln!(w, "E {}", block.0)?,
                Event::Read { addr, class } => writeln!(w, "R {:x} {}", addr.0, class_name(class))?,
                Event::Write { addr, class } => {
                    writeln!(w, "W {:x} {}", addr.0, class_name(class))?
                }
                Event::Prefetch { addr, class } => {
                    writeln!(w, "P {:x} {}", addr.0, class_name(class))?
                }
                Event::LockAcquire { lock, addr } => writeln!(w, "LA {} {:x}", lock.0, addr.0)?,
                Event::LockRelease { lock, addr } => writeln!(w, "LR {} {:x}", lock.0, addr.0)?,
                Event::Barrier {
                    barrier,
                    addr,
                    participants,
                } => writeln!(w, "B {} {:x} {}", barrier.0, addr.0, participants)?,
                Event::BlockOpBegin { op } => writeln!(
                    w,
                    "OB {:x} {:x} {:x} {} {} {}",
                    op.src.0,
                    op.dst.0,
                    op.len,
                    match op.kind {
                        BlockKind::Copy => "copy",
                        BlockKind::Zero => "zero",
                    },
                    class_name(op.src_class),
                    class_name(op.dst_class),
                )?,
                Event::BlockOpEnd => writeln!(w, "OE")?,
                Event::SetMode { mode } => {
                    writeln!(w, "M {}", if mode.is_os() { "os" } else { "user" })?
                }
                Event::Idle { cycles } => writeln!(w, "I {cycles}")?,
            }
        }
    }
    writeln!(w, "end")?;
    Ok(())
}

struct Parser {
    line_no: usize,
}

impl Parser {
    fn err<T>(&self, msg: impl fmt::Display) -> Result<T, ReadTraceError> {
        Err(ReadTraceError::Parse {
            line: self.line_no,
            msg: msg.to_string(),
        })
    }

    fn hex(&self, s: &str) -> Result<u32, ReadTraceError> {
        u32::from_str_radix(s, 16).or_else(|_| self.err(format!("bad hex value {s:?}")))
    }

    fn num<T: std::str::FromStr>(&self, s: &str) -> Result<T, ReadTraceError> {
        s.parse().or_else(|_| self.err(format!("bad number {s:?}")))
    }

    fn class(&self, s: &str) -> Result<DataClass, ReadTraceError> {
        parse_class(s).map_or_else(|| self.err(format!("unknown class {s:?}")), Ok)
    }
}

/// Reads a trace previously written by [`write_trace`].
///
/// Decoding goes through [`read_trace_chunked`] and materializes at the
/// end; callers that keep the trace chunked should use that function
/// directly and skip the materialization entirely.
///
/// # Errors
///
/// Returns [`ReadTraceError::Parse`] when the input deviates from the
/// format (wrong magic, unknown event letter, missing fields),
/// [`ReadTraceError::Truncated`] when the input ends before the trailing
/// `end` marker, and [`ReadTraceError::Io`] on reader failures.
pub fn read_trace<R: BufRead>(r: R) -> Result<Trace, ReadTraceError> {
    Ok(read_trace_chunked(r)?.to_trace())
}

/// Reads a trace dump directly into the chunked columnar representation.
///
/// Events decode straight into per-CPU [`ChunkedStreamBuilder`]s as lines
/// are parsed — no intermediate per-CPU `Vec<Event>` of the whole trace
/// ever exists, so peak memory while loading a dump is the finished
/// compact encoding plus one open chunk per CPU.
///
/// # Errors
///
/// Same as [`read_trace`].
pub fn read_trace_chunked<R: BufRead>(r: R) -> Result<ChunkedTrace, ReadTraceError> {
    let mut p = Parser { line_no: 0 };
    let mut lines = r.lines();
    let mut next = |p: &mut Parser| -> Result<Option<String>, ReadTraceError> {
        p.line_no += 1;
        match lines.next() {
            Some(l) => Ok(Some(l?)),
            None => Ok(None),
        }
    };

    let magic = next(&mut p)?.unwrap_or_default();
    if magic.trim() != "oscache-trace 1" {
        return match magic.trim().strip_prefix("oscache-trace ") {
            Some(version) => p.err(format!("unsupported trace format version {version:?}")),
            None => p.err(format!("bad magic {magic:?}")),
        };
    }

    let mut meta = TraceMeta::default();
    let mut code = CodeLayout::new();
    let mut n_cpus = 0usize;
    let mut cpus_declared = false;
    let mut builders: Vec<ChunkedStreamBuilder> = Vec::new();
    let mut seen_streams: Vec<bool> = Vec::new();
    let mut cur: Option<usize> = None;
    let mut site_names: Vec<&'static str> = Vec::new();
    let mut saw_end = false;

    while let Some(line) = next(&mut p)? {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let tag = it.next().unwrap_or("");
        let mut arg = |p: &Parser| -> Result<&str, ReadTraceError> {
            it.next().map_or_else(|| p.err("missing field"), Ok)
        };
        match tag {
            "workload" => {
                meta.workload = line["workload ".len().min(line.len())..].to_string();
            }
            "cpus" => {
                if cpus_declared {
                    return p.err("duplicate `cpus` declaration");
                }
                cpus_declared = true;
                n_cpus = p.num(arg(&p)?)?;
                builders = (0..n_cpus).map(|_| ChunkedStreamBuilder::new()).collect();
                seen_streams = vec![false; n_cpus];
            }
            "site" => {
                let name = arg(&p)?.to_string();
                let kind = arg(&p)?;
                if kind != "loop" && kind != "seq" {
                    return p.err(format!("unknown site kind {kind:?}"));
                }
                // Site names become 'static via leak: a trace load is a
                // one-time operation and the layout lives as long as the
                // trace.
                let leaked: &'static str = Box::leak(name.into_boxed_str());
                site_names.push(leaked);
                code.add_site(leaked, kind == "loop");
            }
            "block" => {
                let start = p.hex(arg(&p)?)?;
                let instrs: u32 = p.num(arg(&p)?)?;
                if instrs == 0 {
                    return p.err("basic block with zero instructions");
                }
                let site: u16 = p.num(arg(&p)?)?;
                if site as usize >= site_names.len() {
                    return p.err(format!("block references unknown site {site}"));
                }
                code.add_block(Addr(start), instrs, SiteId(site));
            }
            "var" => {
                let addr = p.hex(arg(&p)?)?;
                let size = p.num(arg(&p)?)?;
                let class = p.class(arg(&p)?)?;
                let role = {
                    let s = arg(&p)?;
                    parse_role(s).map_or_else(|| p.err(format!("unknown role {s:?}")), Ok)?
                };
                let fsg = {
                    let s = arg(&p)?;
                    if s == "-" {
                        None
                    } else {
                        Some(p.num(s)?)
                    }
                };
                let name = it.collect::<Vec<_>>().join(" ");
                meta.vars.push(KernelVar {
                    name,
                    addr: Addr(addr),
                    size,
                    class,
                    role,
                    false_shared_group: fsg,
                });
            }
            "range" => {
                let base = p.hex(arg(&p)?)?;
                let len = p.hex(arg(&p)?)?;
                meta.kernel_data.push((Addr(base), len));
            }
            "stream" => {
                let cpu: usize = p.num(arg(&p)?)?;
                if cpu >= n_cpus {
                    return p.err(format!("stream {cpu} out of range"));
                }
                if seen_streams[cpu] {
                    return p.err(format!("duplicate stream {cpu}"));
                }
                seen_streams[cpu] = true;
                cur = Some(cpu);
            }
            "end" => {
                saw_end = true;
                break;
            }
            ev => {
                let Some(cpu) = cur else {
                    return p.err("event before any `stream` header");
                };
                let e = match ev {
                    "E" => Event::Exec {
                        block: BlockId(p.num(arg(&p)?)?),
                    },
                    "R" => Event::Read {
                        addr: Addr(p.hex(arg(&p)?)?),
                        class: p.class(arg(&p)?)?,
                    },
                    "W" => Event::Write {
                        addr: Addr(p.hex(arg(&p)?)?),
                        class: p.class(arg(&p)?)?,
                    },
                    "P" => Event::Prefetch {
                        addr: Addr(p.hex(arg(&p)?)?),
                        class: p.class(arg(&p)?)?,
                    },
                    "LA" => Event::LockAcquire {
                        lock: LockId(p.num(arg(&p)?)?),
                        addr: Addr(p.hex(arg(&p)?)?),
                    },
                    "LR" => Event::LockRelease {
                        lock: LockId(p.num(arg(&p)?)?),
                        addr: Addr(p.hex(arg(&p)?)?),
                    },
                    "B" => Event::Barrier {
                        barrier: BarrierId(p.num(arg(&p)?)?),
                        addr: Addr(p.hex(arg(&p)?)?),
                        participants: p.num(arg(&p)?)?,
                    },
                    "OB" => {
                        let src = Addr(p.hex(arg(&p)?)?);
                        let dst = Addr(p.hex(arg(&p)?)?);
                        let len = p.hex(arg(&p)?)?;
                        let kind = match arg(&p)? {
                            "copy" => BlockKind::Copy,
                            "zero" => BlockKind::Zero,
                            other => return p.err(format!("unknown block kind {other:?}")),
                        };
                        Event::BlockOpBegin {
                            op: BlockOp {
                                src,
                                dst,
                                len,
                                kind,
                                src_class: p.class(arg(&p)?)?,
                                dst_class: p.class(arg(&p)?)?,
                            },
                        }
                    }
                    "OE" => Event::BlockOpEnd,
                    "M" => Event::SetMode {
                        mode: match arg(&p)? {
                            "os" => Mode::Os,
                            "user" => Mode::User,
                            other => return p.err(format!("unknown mode {other:?}")),
                        },
                    },
                    "I" => Event::Idle {
                        cycles: p.num(arg(&p)?)?,
                    },
                    other => return p.err(format!("unknown event tag {other:?}")),
                };
                builders[cpu].push(e);
            }
        }
    }

    if !saw_end {
        return Err(ReadTraceError::Truncated { line: p.line_no });
    }

    meta.code = code;
    let mut trace = ChunkedTrace::new(n_cpus, meta);
    for (cpu, b) in builders.into_iter().enumerate() {
        trace.streams[cpu] = b.finish();
    }
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamBuilder;

    fn sample() -> Trace {
        let mut meta = TraceMeta::default();
        let site = meta.code.add_site("seq", false);
        let lsite = meta.code.add_site("loop", true);
        let bb = meta.code.add_block(Addr(0x1000), 8, site);
        meta.code.add_block(Addr(0x2000), 4, lsite);
        meta.vars.push(KernelVar {
            name: "vmmeter.v_intr".into(),
            addr: Addr(0x0100_0000),
            size: 4,
            class: DataClass::InfreqCounter,
            role: VarRole::Counter,
            false_shared_group: Some(3),
        });
        meta.kernel_data.push((Addr(0x0100_0000), 0x4000));
        let mut t = Trace::new(2, meta);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        b.exec(bb);
        b.read(Addr(0x0100_0000), DataClass::InfreqCounter);
        b.lock_acquire(LockId(2), Addr(0x0100_0300));
        b.write(Addr(0x0100_0004), DataClass::FreqShared);
        b.lock_release(LockId(2), Addr(0x0100_0300));
        b.barrier(BarrierId(1), Addr(0x0100_0340), 2);
        b.begin_block_copy(
            Addr(0x1000_0000),
            Addr(0x1100_0000),
            64,
            DataClass::PageFrame,
            DataClass::UserData,
        );
        b.read(Addr(0x1000_0000), DataClass::PageFrame);
        b.write(Addr(0x1100_0000), DataClass::UserData);
        b.end_block_op();
        b.prefetch(Addr(0x0100_0010), DataClass::SyscallTable);
        b.idle(42);
        t.streams[0] = b.finish();
        let mut b1 = StreamBuilder::new();
        b1.set_mode(Mode::Os);
        b1.barrier(BarrierId(1), Addr(0x0100_0340), 2);
        t.streams[1] = b1.finish();
        t
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.meta.workload, t.meta.workload);
        assert_eq!(back.n_cpus(), t.n_cpus());
        assert_eq!(back.meta.vars.len(), 1);
        let v = &back.meta.vars[0];
        assert_eq!(v.name, "vmmeter.v_intr");
        assert_eq!(v.role, VarRole::Counter);
        assert_eq!(v.false_shared_group, Some(3));
        assert_eq!(back.meta.kernel_data, t.meta.kernel_data);
        assert_eq!(back.meta.code.block_count(), t.meta.code.block_count());
        assert_eq!(back.meta.code.site_count(), t.meta.code.site_count());
        for cpu in 0..2 {
            assert_eq!(back.streams[cpu].events(), t.streams[cpu].events());
        }
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"not a trace\n"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
        assert!(err.to_string().contains("bad magic"));
    }

    #[test]
    fn rejects_unsupported_version() {
        let err = read_trace(&b"oscache-trace 99\ncpus 1\nend\n"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
        assert!(
            err.to_string().contains("unsupported trace format version"),
            "{err}"
        );
    }

    #[test]
    fn rejects_truncated_dump() {
        // A full dump with the trailing `end` (and some events) cut off
        // must fail with the typed truncation error, not a generic parse
        // error — callers distinguish "re-dump this" from "fix this line".
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let cut = buf.len() - "end\n".len();
        assert!(buf[cut..].starts_with(b"end"));
        let err = read_trace(&buf[..cut]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated { .. }), "{err:?}");
        assert!(err.to_string().contains("truncated"), "{err}");
        // Cutting mid-stream (not just the marker) reports the same way;
        // cut at a line boundary so the failure is the missing `end`, not
        // a half-written line.
        let half = buf.len() / 2;
        let cut = buf[..half].iter().rposition(|&b| b == b'\n').unwrap() + 1;
        let err = read_trace(&buf[..cut]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Truncated { .. }), "{err:?}");
    }

    #[test]
    fn chunked_read_matches_materialized_read() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let chunked = read_trace_chunked(&buf[..]).unwrap();
        let flat = read_trace(&buf[..]).unwrap();
        assert_eq!(chunked.n_cpus(), flat.n_cpus());
        assert_eq!(chunked.total_events(), flat.total_events());
        for cpu in 0..flat.n_cpus() {
            let decoded: Vec<Event> = chunked.streams[cpu].iter().collect();
            assert_eq!(decoded.as_slice(), flat.streams[cpu].events());
        }
    }

    #[test]
    fn rejects_duplicate_stream() {
        let input = b"oscache-trace 1\nworkload x\ncpus 2\nstream 0\nI 5\nstream 0\nend\n";
        let err = read_trace(&input[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 6, .. }));
        assert!(err.to_string().contains("duplicate stream 0"), "{err}");
    }

    #[test]
    fn rejects_duplicate_cpus_and_zero_instr_block() {
        let input = b"oscache-trace 1\nworkload x\ncpus 2\ncpus 4\nend\n";
        assert!(read_trace(&input[..]).is_err());
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nsite s seq\nblock 1000 0 0\nend\n";
        let err = read_trace(&input[..]).unwrap_err();
        assert!(err.to_string().contains("zero instructions"), "{err}");
    }

    #[test]
    fn rejects_structurally_invalid_trace() {
        // Parses fine, but the lock is never released: caught by validate().
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nstream 0\nLA 3 40\nend\n";
        let err = read_trace(&input[..]).unwrap_err();
        assert!(matches!(
            err,
            ReadTraceError::Invalid(TraceError::LockHeldAtEnd { .. })
        ));
    }

    #[test]
    fn rejects_event_outside_stream() {
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nR 100 UserData\n";
        let err = read_trace(&input[..]).unwrap_err();
        assert!(err.to_string().contains("before any `stream`"));
    }

    #[test]
    fn rejects_unknown_event_and_class() {
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nstream 0\nZZ 1\n";
        assert!(read_trace(&input[..]).is_err());
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nstream 0\nR 100 NotAClass\n";
        assert!(read_trace(&input[..]).is_err());
    }

    #[test]
    fn rejects_out_of_range_stream_and_site() {
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nstream 5\n";
        assert!(read_trace(&input[..]).is_err());
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nblock 0 4 9\n";
        assert!(read_trace(&input[..]).is_err());
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let input = b"oscache-trace 1\nworkload x\ncpus 1\nstream 0\nI notanumber\n";
        let err = read_trace(&input[..]).unwrap_err();
        assert!(err.to_string().contains("line 5"), "{err}");
    }

    #[test]
    fn workload_names_with_spaces_and_plus_survive() {
        let mut t = sample();
        t.meta.workload = "TRFD+Make variant 2".into();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.meta.workload, "TRFD+Make variant 2");
    }
}
