//! Static trace validation.
//!
//! A trace crosses a trust boundary every time it is read back from disk or
//! perturbed by the fault-injection harness, so before replay the simulator
//! checks every structural invariant the generators promise: block ids
//! resolve against the code layout, lock and block-operation brackets are
//! well-nested per CPU, barrier arrivals agree on their participant count,
//! kernel variables sit inside the declared kernel data ranges, and block
//! operations stay inside the address space. [`Trace::validate`] reports the
//! first violation as a typed [`TraceError`]; `read_trace` and
//! `Machine::new` both call it so malformed input is rejected with a precise
//! error instead of a panic deep inside replay.

use crate::{BarrierId, BlockId, Event, LockId, Trace, TraceMeta};
use std::collections::HashMap;
use std::fmt;

/// A structural violation found in a [`Trace`].
///
/// `cpu` is the stream index and `index` the offending event's position in
/// that stream, so errors point at the exact event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The trace has a different number of streams than the consumer
    /// expects (e.g. the machine configuration's CPU count).
    CpuCountMismatch {
        /// Expected number of CPUs.
        expected: usize,
        /// Streams actually present.
        actual: usize,
    },
    /// An `Exec` event names a basic block the code layout does not define.
    UnknownBlock {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
        /// The unresolved block id.
        block: BlockId,
    },
    /// A lock was acquired while already held by the same CPU.
    LockAlreadyHeld {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
        /// The lock.
        lock: LockId,
    },
    /// A lock was released by a CPU that does not hold it.
    LockNotHeld {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
        /// The lock.
        lock: LockId,
    },
    /// A stream ended with a lock still held.
    LockHeldAtEnd {
        /// Stream index.
        cpu: usize,
        /// The leaked lock.
        lock: LockId,
    },
    /// A barrier arrival declared a participant count of zero or more than
    /// the number of CPUs.
    BarrierParticipants {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
        /// Declared participant count.
        participants: u8,
        /// CPUs in the trace.
        n_cpus: usize,
    },
    /// Two arrivals at the same barrier declared different participant
    /// counts.
    InconsistentBarrier {
        /// Stream index of the second, disagreeing arrival.
        cpu: usize,
        /// Event position of that arrival.
        index: usize,
        /// The barrier.
        barrier: BarrierId,
    },
    /// A block operation began while another was still open (they do not
    /// nest).
    NestedBlockOp {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
    },
    /// A `BlockOpEnd` with no open block operation.
    UnmatchedBlockOpEnd {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
    },
    /// A stream ended inside an open block operation.
    UnterminatedBlockOp {
        /// Stream index.
        cpu: usize,
    },
    /// A block operation of zero length.
    EmptyBlockOp {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
    },
    /// A block operation whose source or destination range overflows the
    /// 32-bit address space.
    BlockOpOutOfRange {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
    },
    /// An event that may not appear inside a block-operation bracket
    /// (synchronization, mode switches, idle time, nested brackets).
    ForeignEventInBlockOp {
        /// Stream index.
        cpu: usize,
        /// Event position.
        index: usize,
        /// Short description of the offending event kind.
        kind: &'static str,
    },
    /// A declared kernel variable lies (partly) outside every declared
    /// kernel data range.
    VarOutsideKernelData {
        /// The variable's symbol name.
        name: String,
    },
    /// A declared kernel variable's extent overflows the address space.
    VarOverflow {
        /// The variable's symbol name.
        name: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::CpuCountMismatch { expected, actual } => {
                write!(f, "trace has {actual} streams, expected {expected}")
            }
            TraceError::UnknownBlock { cpu, index, block } => {
                write!(f, "cpu {cpu} event {index}: unknown basic block {block:?}")
            }
            TraceError::LockAlreadyHeld { cpu, index, lock } => {
                write!(f, "cpu {cpu} event {index}: {lock:?} acquired while held")
            }
            TraceError::LockNotHeld { cpu, index, lock } => {
                write!(f, "cpu {cpu} event {index}: {lock:?} released but not held")
            }
            TraceError::LockHeldAtEnd { cpu, lock } => {
                write!(f, "cpu {cpu}: stream ends with {lock:?} still held")
            }
            TraceError::BarrierParticipants {
                cpu,
                index,
                participants,
                n_cpus,
            } => write!(
                f,
                "cpu {cpu} event {index}: barrier declares {participants} \
                 participants on a {n_cpus}-cpu trace"
            ),
            TraceError::InconsistentBarrier {
                cpu,
                index,
                barrier,
            } => write!(
                f,
                "cpu {cpu} event {index}: {barrier:?} arrivals disagree on \
                 participant count"
            ),
            TraceError::NestedBlockOp { cpu, index } => {
                write!(f, "cpu {cpu} event {index}: nested block operation")
            }
            TraceError::UnmatchedBlockOpEnd { cpu, index } => {
                write!(f, "cpu {cpu} event {index}: block-op end without begin")
            }
            TraceError::UnterminatedBlockOp { cpu } => {
                write!(f, "cpu {cpu}: stream ends inside a block operation")
            }
            TraceError::EmptyBlockOp { cpu, index } => {
                write!(f, "cpu {cpu} event {index}: zero-length block operation")
            }
            TraceError::BlockOpOutOfRange { cpu, index } => {
                write!(
                    f,
                    "cpu {cpu} event {index}: block operation overflows the \
                     address space"
                )
            }
            TraceError::ForeignEventInBlockOp { cpu, index, kind } => {
                write!(
                    f,
                    "cpu {cpu} event {index}: {kind} inside a block operation"
                )
            }
            TraceError::VarOutsideKernelData { name } => {
                write!(f, "kernel variable `{name}` outside declared kernel ranges")
            }
            TraceError::VarOverflow { name } => {
                write!(f, "kernel variable `{name}` overflows the address space")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// The shared per-event validation engine behind [`Trace::validate`] and
/// `ChunkedTrace::validate`: both drive the same `step`/`finish_stream`
/// state machine, so the chunked representation is checked against exactly
/// the invariants the materialized one is — by construction, not by a
/// parallel copy of the rules.
pub(crate) struct TraceValidator {
    n_cpus: usize,
    n_blocks: usize,
    barrier_sizes: HashMap<BarrierId, u8>,
}

/// Per-stream validator state (lock set and block-op bracket).
pub(crate) struct StreamState {
    held: Vec<LockId>,
    in_block_op: bool,
}

impl TraceValidator {
    /// Runs the metadata invariants and prepares a validator for a trace
    /// with `n_cpus` streams.
    pub(crate) fn new(meta: &TraceMeta, n_cpus: usize) -> Result<Self, TraceError> {
        check_meta(meta)?;
        Ok(TraceValidator {
            n_cpus,
            n_blocks: meta.code.block_count(),
            barrier_sizes: HashMap::new(),
        })
    }

    /// Fresh per-stream state; feed it to [`TraceValidator::step`] for each
    /// event in order, then [`TraceValidator::finish_stream`].
    pub(crate) fn stream_state(&self) -> StreamState {
        StreamState {
            held: Vec::new(),
            in_block_op: false,
        }
    }

    /// Checks one event at position `index` of stream `cpu`.
    pub(crate) fn step(
        &mut self,
        st: &mut StreamState,
        cpu: usize,
        index: usize,
        ev: &Event,
    ) -> Result<(), TraceError> {
        if st.in_block_op {
            let foreign = match ev {
                Event::Exec { .. }
                | Event::Read { .. }
                | Event::Write { .. }
                | Event::Prefetch { .. }
                | Event::BlockOpEnd => None,
                Event::BlockOpBegin { .. } => return Err(TraceError::NestedBlockOp { cpu, index }),
                Event::LockAcquire { .. } => Some("lock acquire"),
                Event::LockRelease { .. } => Some("lock release"),
                Event::Barrier { .. } => Some("barrier"),
                Event::SetMode { .. } => Some("mode switch"),
                Event::Idle { .. } => Some("idle"),
            };
            if let Some(kind) = foreign {
                return Err(TraceError::ForeignEventInBlockOp { cpu, index, kind });
            }
        }
        match *ev {
            Event::Exec { block } if block.index() >= self.n_blocks => {
                return Err(TraceError::UnknownBlock { cpu, index, block });
            }
            Event::LockAcquire { lock, .. } => {
                if st.held.contains(&lock) {
                    return Err(TraceError::LockAlreadyHeld { cpu, index, lock });
                }
                st.held.push(lock);
            }
            Event::LockRelease { lock, .. } => match st.held.iter().position(|&l| l == lock) {
                Some(pos) => {
                    st.held.remove(pos);
                }
                None => return Err(TraceError::LockNotHeld { cpu, index, lock }),
            },
            Event::Barrier {
                barrier,
                participants,
                ..
            } => {
                if participants == 0 || participants as usize > self.n_cpus {
                    return Err(TraceError::BarrierParticipants {
                        cpu,
                        index,
                        participants,
                        n_cpus: self.n_cpus,
                    });
                }
                match self.barrier_sizes.get(&barrier) {
                    Some(&p) if p != participants => {
                        return Err(TraceError::InconsistentBarrier {
                            cpu,
                            index,
                            barrier,
                        })
                    }
                    Some(_) => {}
                    None => {
                        self.barrier_sizes.insert(barrier, participants);
                    }
                }
            }
            Event::BlockOpBegin { op } => {
                if op.len == 0 {
                    return Err(TraceError::EmptyBlockOp { cpu, index });
                }
                if op.src.0.checked_add(op.len).is_none() || op.dst.0.checked_add(op.len).is_none()
                {
                    return Err(TraceError::BlockOpOutOfRange { cpu, index });
                }
                st.in_block_op = true;
            }
            Event::BlockOpEnd => {
                if !st.in_block_op {
                    return Err(TraceError::UnmatchedBlockOpEnd { cpu, index });
                }
                st.in_block_op = false;
            }
            _ => {}
        }
        Ok(())
    }

    /// End-of-stream invariants: no open block operation, no held locks.
    pub(crate) fn finish_stream(&mut self, st: StreamState, cpu: usize) -> Result<(), TraceError> {
        if st.in_block_op {
            return Err(TraceError::UnterminatedBlockOp { cpu });
        }
        if let Some(&lock) = st.held.first() {
            return Err(TraceError::LockHeldAtEnd { cpu, lock });
        }
        Ok(())
    }
}

/// Metadata invariants: declared kernel variables sit inside the declared
/// kernel data ranges (when any are declared) and nothing overflows the
/// 32-bit address space.
fn check_meta(meta: &TraceMeta) -> Result<(), TraceError> {
    for v in &meta.vars {
        let end = match v.addr.0.checked_add(v.size) {
            Some(e) => e,
            None => {
                return Err(TraceError::VarOverflow {
                    name: v.name.clone(),
                })
            }
        };
        if !meta.kernel_data.is_empty() {
            let covered = meta
                .kernel_data
                .iter()
                .any(|&(base, len)| v.addr.0 >= base.0 && end <= base.0.saturating_add(len));
            if !covered {
                return Err(TraceError::VarOutsideKernelData {
                    name: v.name.clone(),
                });
            }
        }
    }
    Ok(())
}

impl Trace {
    /// Checks every structural invariant a well-formed trace satisfies,
    /// returning the first violation.
    ///
    /// Replay consumers (`Machine::new`) and the dump reader (`read_trace`)
    /// call this so that malformed or adversarial traces are rejected with
    /// a typed error before simulation starts.
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut v = TraceValidator::new(&self.meta, self.n_cpus())?;
        for (cpu, stream) in self.streams.iter().enumerate() {
            let mut st = v.stream_state();
            for (index, ev) in stream.events().iter().enumerate() {
                v.step(&mut st, cpu, index, ev)?;
            }
            v.finish_stream(st, cpu)?;
        }
        Ok(())
    }

    /// Like [`Trace::validate`], additionally requiring exactly `expected`
    /// CPU streams.
    pub fn validate_for_cpus(&self, expected: usize) -> Result<(), TraceError> {
        if self.n_cpus() != expected {
            return Err(TraceError::CpuCountMismatch {
                expected,
                actual: self.n_cpus(),
            });
        }
        self.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Addr, DataClass, KernelVar, Mode, Stream, StreamBuilder, TraceMeta, VarRole};

    fn one_cpu_trace(stream: Stream) -> Trace {
        let mut t = Trace::new(1, TraceMeta::default());
        t.streams[0] = stream;
        t
    }

    #[test]
    fn valid_trace_passes() {
        let mut meta = TraceMeta::default();
        let site = meta.code.add_site("p", false);
        let bb = meta.code.add_block(Addr(0x100), 3, site);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        b.exec(bb);
        b.lock_acquire(LockId(1), Addr(0x40));
        b.read(Addr(0x0100_0000), DataClass::KernelOther);
        b.lock_release(LockId(1), Addr(0x40));
        b.begin_block_zero(Addr(0x2000), 64, DataClass::PageFrame);
        b.write(Addr(0x2000), DataClass::PageFrame);
        b.end_block_op();
        let mut t = Trace::new(1, meta);
        t.streams[0] = b.finish();
        assert_eq!(t.validate(), Ok(()));
        assert_eq!(t.validate_for_cpus(1), Ok(()));
    }

    #[test]
    fn cpu_count_mismatch_detected() {
        let t = Trace::new(2, TraceMeta::default());
        assert_eq!(
            t.validate_for_cpus(4),
            Err(TraceError::CpuCountMismatch {
                expected: 4,
                actual: 2
            })
        );
    }

    #[test]
    fn unknown_block_detected() {
        let t = one_cpu_trace(Stream::from_events(vec![Event::Exec { block: BlockId(7) }]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnknownBlock {
                cpu: 0,
                index: 0,
                block: BlockId(7)
            })
        ));
    }

    #[test]
    fn lock_protocol_violations_detected() {
        let acquire = Event::LockAcquire {
            lock: LockId(3),
            addr: Addr(0x40),
        };
        let release = Event::LockRelease {
            lock: LockId(3),
            addr: Addr(0x40),
        };
        let t = one_cpu_trace(Stream::from_events(vec![acquire, acquire]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::LockAlreadyHeld { .. })
        ));
        let t = one_cpu_trace(Stream::from_events(vec![release]));
        assert!(matches!(t.validate(), Err(TraceError::LockNotHeld { .. })));
        let t = one_cpu_trace(Stream::from_events(vec![acquire]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::LockHeldAtEnd { .. })
        ));
    }

    #[test]
    fn barrier_violations_detected() {
        let arrive = |participants| Event::Barrier {
            barrier: BarrierId(0),
            addr: Addr(0x80),
            participants,
        };
        let mut t = Trace::new(2, TraceMeta::default());
        t.streams[0] = Stream::from_events(vec![arrive(3)]);
        assert!(matches!(
            t.validate(),
            Err(TraceError::BarrierParticipants { .. })
        ));
        t.streams[0] = Stream::from_events(vec![arrive(2)]);
        t.streams[1] = Stream::from_events(vec![arrive(1)]);
        assert!(matches!(
            t.validate(),
            Err(TraceError::InconsistentBarrier { cpu: 1, .. })
        ));
    }

    #[test]
    fn block_op_bracket_violations_detected() {
        let begin = Event::BlockOpBegin {
            op: crate::BlockOp {
                src: Addr(0x1000),
                dst: Addr(0x2000),
                len: 64,
                kind: crate::BlockKind::Copy,
                src_class: DataClass::PageFrame,
                dst_class: DataClass::PageFrame,
            },
        };
        let t = one_cpu_trace(Stream::from_events(vec![begin, begin]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::NestedBlockOp { .. })
        ));
        let t = one_cpu_trace(Stream::from_events(vec![Event::BlockOpEnd]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnmatchedBlockOpEnd { .. })
        ));
        let t = one_cpu_trace(Stream::from_events(vec![begin]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::UnterminatedBlockOp { cpu: 0 })
        ));
        let t = one_cpu_trace(Stream::from_events(vec![
            begin,
            Event::Idle { cycles: 5 },
            Event::BlockOpEnd,
        ]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::ForeignEventInBlockOp { kind: "idle", .. })
        ));
    }

    #[test]
    fn out_of_range_block_op_detected() {
        let begin = Event::BlockOpBegin {
            op: crate::BlockOp {
                src: Addr(0x1000),
                dst: Addr(0xFFFF_FF00),
                len: 0x1000,
                kind: crate::BlockKind::Copy,
                src_class: DataClass::PageFrame,
                dst_class: DataClass::PageFrame,
            },
        };
        let t = one_cpu_trace(Stream::from_events(vec![begin, Event::BlockOpEnd]));
        assert!(matches!(
            t.validate(),
            Err(TraceError::BlockOpOutOfRange { .. })
        ));
        let zero = Event::BlockOpBegin {
            op: crate::BlockOp {
                src: Addr(0x1000),
                dst: Addr(0x1000),
                len: 0,
                kind: crate::BlockKind::Zero,
                src_class: DataClass::PageFrame,
                dst_class: DataClass::PageFrame,
            },
        };
        let t = one_cpu_trace(Stream::from_events(vec![zero, Event::BlockOpEnd]));
        assert!(matches!(t.validate(), Err(TraceError::EmptyBlockOp { .. })));
    }

    #[test]
    fn vars_outside_kernel_ranges_detected() {
        let var = KernelVar {
            name: "stray".into(),
            addr: Addr(0x9000_0000),
            size: 8,
            class: DataClass::KernelOther,
            role: VarRole::Plain,
            false_shared_group: None,
        };
        let meta = TraceMeta {
            workload: "t".into(),
            code: Default::default(),
            vars: vec![var],
            kernel_data: vec![(Addr(0x0100_0000), 0x1000)],
        };
        let t = Trace::new(1, meta);
        assert!(matches!(
            t.validate(),
            Err(TraceError::VarOutsideKernelData { .. })
        ));
    }

    #[test]
    fn errors_display_cleanly() {
        let e = TraceError::UnknownBlock {
            cpu: 2,
            index: 17,
            block: BlockId(9),
        };
        let s = e.to_string();
        assert!(s.contains("cpu 2"), "{s}");
        assert!(s.contains("17"), "{s}");
    }
}
