//! The multiprocessor trace: per-CPU streams plus workload metadata.

use crate::{Addr, CodeLayout, CpuId, DataClass, Stream};
use std::fmt;

/// How the software-optimization passes may treat a kernel variable.
///
/// The paper's optimizations act on specific variables found by manual trace
/// analysis: event counters become per-CPU (`§5.1`), and a 384-byte core of
/// barriers, the 10 hottest locks, and a few producer-consumer variables is
/// mapped with an update protocol (`§5.2`). The generator labels variables
/// with their ground-truth role; the automated analysis pass must *rediscover*
/// the sets from reference behaviour and is tested against these labels.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VarRole {
    /// An event counter: incremented frequently by all CPUs, read rarely.
    Counter,
    /// A barrier synchronization variable.
    Barrier,
    /// A kernel lock word.
    Lock,
    /// A frequently-shared variable; `producer_consumer` marks those whose
    /// sharing pattern (partially) favours an update protocol.
    FreqShared {
        /// True when writes by one CPU are usually followed by reads from
        /// other CPUs (the pattern worth updating, §5.2).
        producer_consumer: bool,
    },
    /// Ordinary kernel data.
    Plain,
}

/// A named, statically-allocated kernel variable.
#[derive(Clone, Debug)]
pub struct KernelVar {
    /// Symbol name, e.g. `"vmmeter.v_intr"`.
    pub name: String,
    /// First byte.
    pub addr: Addr,
    /// Size in bytes.
    pub size: u32,
    /// Attribution class its references carry.
    pub class: DataClass,
    /// Ground-truth role (see [`VarRole`]).
    pub role: VarRole,
    /// Variables sharing a false-sharing group id live in the same cache
    /// line but are accessed by different CPUs; the relocation pass should
    /// split them (§5.1).
    pub false_shared_group: Option<u16>,
}

impl KernelVar {
    /// True if `addr` falls inside this variable.
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.addr && addr.0 < self.addr.0 + self.size
    }
}

/// Metadata travelling with a [`Trace`].
#[derive(Clone, Debug, Default)]
pub struct TraceMeta {
    /// Human-readable workload name (e.g. `"TRFD_4"`).
    pub workload: String,
    /// Code map for instruction-fetch replay and hot-spot attribution.
    pub code: CodeLayout,
    /// Statically-allocated kernel variables (the optimization passes'
    /// candidate set; dynamically-allocated structures are excluded, as in
    /// the paper's conflict analysis, §6).
    pub vars: Vec<KernelVar>,
    /// `(base, len)` ranges of all kernel data regions (tables, stacks,
    /// buffer cache) — the footprint a *pure* update protocol would have
    /// to cover (§5.2's comparison point).
    pub kernel_data: Vec<(Addr, u32)>,
}

impl TraceMeta {
    /// Finds the kernel variable containing `addr`, if any.
    pub fn var_at(&self, addr: Addr) -> Option<&KernelVar> {
        self.vars.iter().find(|v| v.contains(addr))
    }

    /// Finds a kernel variable by name.
    pub fn var_named(&self, name: &str) -> Option<&KernelVar> {
        self.vars.iter().find(|v| v.name == name)
    }
}

/// A complete multiprocessor trace: one [`Stream`] per CPU plus metadata.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Per-CPU event streams, indexed by [`CpuId`].
    pub streams: Vec<Stream>,
    /// Workload metadata.
    pub meta: TraceMeta,
}

impl Trace {
    /// Creates a trace over `n_cpus` empty streams.
    pub fn new(n_cpus: usize, meta: TraceMeta) -> Self {
        Trace {
            streams: vec![Stream::new(); n_cpus],
            meta,
        }
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> usize {
        self.streams.len()
    }

    /// The stream of one CPU.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn stream(&self, cpu: CpuId) -> &Stream {
        &self.streams[cpu.index()]
    }

    /// Total number of events across all CPUs.
    pub fn total_events(&self) -> usize {
        self.streams.iter().map(Stream::len).sum()
    }

    /// Total scalar data reads across all CPUs.
    pub fn total_reads(&self) -> usize {
        self.streams.iter().map(Stream::read_count).sum()
    }

    /// Total scalar data writes across all CPUs.
    pub fn total_writes(&self) -> usize {
        self.streams.iter().map(Stream::write_count).sum()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Trace({}, {} cpus, {} events)",
            self.meta.workload,
            self.n_cpus(),
            self.total_events()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, StreamBuilder};

    fn var(name: &str, addr: u32, size: u32) -> KernelVar {
        KernelVar {
            name: name.to_string(),
            addr: Addr(addr),
            size,
            class: DataClass::KernelOther,
            role: VarRole::Plain,
            false_shared_group: None,
        }
    }

    #[test]
    fn var_containment_is_half_open() {
        let v = var("x", 100, 8);
        assert!(!v.contains(Addr(99)));
        assert!(v.contains(Addr(100)));
        assert!(v.contains(Addr(107)));
        assert!(!v.contains(Addr(108)));
    }

    #[test]
    fn meta_lookup_by_addr_and_name() {
        let meta = TraceMeta {
            workload: "t".into(),
            code: CodeLayout::new(),
            vars: vec![var("a", 0, 4), var("b", 64, 4)],
            kernel_data: Vec::new(),
        };
        assert_eq!(meta.var_at(Addr(65)).unwrap().name, "b");
        assert!(meta.var_at(Addr(32)).is_none());
        assert_eq!(meta.var_named("a").unwrap().addr, Addr(0));
        assert!(meta.var_named("zz").is_none());
    }

    #[test]
    fn trace_counts_aggregate_streams() {
        let mut t = Trace::new(2, TraceMeta::default());
        let mut b = StreamBuilder::new();
        b.read(Addr(0), DataClass::UserData);
        b.write(Addr(4), DataClass::UserData);
        t.streams[0] = b.finish();
        t.streams[1] = Stream::from_events(vec![Event::Idle { cycles: 10 }]);
        assert_eq!(t.n_cpus(), 2);
        assert_eq!(t.total_events(), 3);
        assert_eq!(t.total_reads(), 1);
        assert_eq!(t.total_writes(), 1);
        assert_eq!(t.stream(CpuId(1)).len(), 1);
    }
}
