//! # oscache-trace
//!
//! Reference-trace substrate for the `oscache` workspace: the event
//! vocabulary emitted by the synthetic operating-system workload generators
//! and consumed by the memory-system simulator.
//!
//! The design mirrors the methodology of Xia & Torrellas (HPCA 1996). Their
//! hardware performance monitor captured, for each processor of a 4-CPU
//! Alliant FX/8, every data reference plus *escape* references that encode
//! which basic block is executing, letting them attribute each data access to
//! the kernel data structure it touches. This crate models the same
//! information content:
//!
//! * [`Event`] — one trace entry: an executed basic block, a tagged data
//!   read/write, a synchronization operation, a block-operation bracket, a
//!   mode switch, or idle time.
//! * [`DataClass`] — the data-structure attribution the paper recovered from
//!   its basic-block instrumentation (§2.2).
//! * [`CodeLayout`] — basic blocks with instruction addresses, so the
//!   simulator can replay instruction fetches against the L1 I-cache.
//! * [`Trace`] — one [`Stream`] per CPU plus the metadata (code layout,
//!   kernel variable map, synchronization objects) the software optimization
//!   passes need.
//!
//! # Example
//!
//! ```
//! use oscache_trace::{Addr, DataClass, Mode, StreamBuilder};
//!
//! let mut b = StreamBuilder::new();
//! b.set_mode(Mode::Os);
//! b.read(Addr(0x0100_0000), DataClass::RunQueue);
//! b.write(Addr(0x0100_0040), DataClass::InfreqCounter);
//! let stream = b.finish();
//! assert_eq!(stream.events().len(), 3); // mode switch + read + write
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
pub mod chunk;
mod class;
mod code;
mod event;
pub mod io;
pub mod rng;
pub mod spill;
mod stream;
mod trace;
mod validate;

pub use addr::{Addr, CpuId, LineAddr, PAGE_SIZE, WORD_SIZE};
pub use chunk::{ChunkedStream, ChunkedStreamBuilder, ChunkedTrace, CHUNK_EVENTS};
pub use class::{CoherenceCategory, DataClass};
pub use code::{BasicBlock, BlockId, CodeLayout, SiteId, SiteInfo};
pub use event::{BarrierId, BlockKind, BlockOp, Event, LockId, Mode};
pub use io::{read_trace, read_trace_chunked, write_trace, ReadTraceError};
pub use spill::{
    spill_enabled, IoFaultClass, IoFaultPlan, MemBudget, SpillError, SpillErrorKind, SpillStore,
    SpillTarget, StoreIdentity,
};
pub use stream::{Stream, StreamBuilder};
pub use trace::{KernelVar, Trace, TraceMeta, VarRole};
pub use validate::TraceError;
