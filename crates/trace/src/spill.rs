//! Durable spill-to-disk storage for sealed chunks, plus the memory-budget
//! governor that decides when to use it.
//!
//! A [`SpillStore`] owns one segment file per CPU under a process-private
//! scratch directory. Sealed delta-encoded chunks are appended as
//! length-prefixed frames, each carrying a CRC-32 of its payload, behind a
//! CRC-covered segment header that binds the store to its trace identity
//! (schema / scale / seed / CPU count) exactly like the run journal's
//! header (DESIGN.md §13.2). Segments are written as `cpu-NN.tmp` and
//! renamed to `cpu-NN.seg` on seal, so a reader never observes a
//! half-written file by name — the same temp-then-rename idiom the journal
//! uses.
//!
//! Robustness model (DESIGN.md §18):
//!
//! * **Detection**: every frame read re-checks its CRC and length; a torn
//!   tail, a hole from a short write, or a flipped bit surfaces as a typed
//!   [`SpillError`] naming the segment and frame, never as silently wrong
//!   events.
//! * **Recovery**: a corrupt frame is *quarantined and rebuilt* — the
//!   store's rebuilder re-derives the chunk's true bytes from the
//!   deterministic generator, verifies them against the frame's recorded
//!   CRC, caches them, and the read succeeds. One `class=spill-salvage`
//!   stderr line per salvaged frame keeps the repair observable.
//! * **Degradation**: a failed *write* (ENOSPC, a vanished directory)
//!   never corrupts anything — the chunk simply stays in memory and the
//!   [`MemBudget`] notes the degradation, so a full disk turns into an
//!   `overloaded` answer at the budget's enforcement points instead of an
//!   abort.
//! * **Restart safety**: scratch directories are keyed by PID. A process
//!   killed `-9` mid-spill leaves files no successor ever opens; the next
//!   process sweeps directories whose owning PID is gone.
//!
//! Injected faults ([`IoFaultPlan`], `--inject-io seed[:class]`) corrupt
//! the write path deterministically — short writes, single-bit flips, and
//! sticky ENOSPC — so the detection and recovery paths above stay
//! continuously exercised, in the spirit of `memsys::faults`.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Whether spilling is permitted (the default when a budget asks for it).
/// Setting `REPRO_NO_SPILL` to any non-empty value other than `0` keeps
/// every chunk in memory — today's pure in-memory path, verbatim — which
/// is the oracle the spill differential tests diff against. Mirrors
/// `REPRO_NO_STREAMING` / `REPRO_NO_SPECIALIZE`.
pub fn spill_enabled() -> bool {
    match std::env::var_os("REPRO_NO_SPILL") {
        Some(v) => v.is_empty() || v == "0",
        None => true,
    }
}

// ---- CRC-32 (IEEE 802.3, reflected) ----------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 == 1 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes` — the frame and header checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
    }
    !c
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---- errors ----------------------------------------------------------------

/// What went wrong at a spill segment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpillErrorKind {
    /// An OS-level I/O failure (rendered message).
    Io(String),
    /// The device is out of space (real `ENOSPC` or injected).
    NoSpace,
    /// A frame's payload failed its CRC check.
    Corrupt {
        /// CRC recorded at write time.
        expected: u32,
        /// CRC of the bytes actually read.
        found: u32,
    },
    /// A frame could not be read back in full (torn tail / short write).
    Torn {
        /// Bytes the frame should hold.
        expected: u32,
        /// Bytes available.
        got: u64,
    },
    /// A segment header does not match the identity this store expects.
    HeaderMismatch {
        /// Which field disagreed (`"magic"`, `"schema"`, ...).
        field: &'static str,
        /// Value found in the file.
        found: u64,
        /// Value expected.
        want: u64,
    },
}

/// A typed spill failure: the segment, the frame (when one is involved),
/// and the kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpillError {
    /// Segment file name, e.g. `cpu-02.seg`.
    pub segment: String,
    /// Frame ordinal within the segment, when the failure is per-frame.
    pub frame: Option<u32>,
    /// What went wrong.
    pub kind: SpillErrorKind,
}

impl std::fmt::Display for SpillError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spill segment {}", self.segment)?;
        if let Some(fr) = self.frame {
            write!(f, " frame {fr}")?;
        }
        match &self.kind {
            SpillErrorKind::Io(m) => write!(f, ": io error: {m}"),
            SpillErrorKind::NoSpace => write!(f, ": no space on device"),
            SpillErrorKind::Corrupt { expected, found } => {
                write!(f, ": payload crc {found:#010x}, expected {expected:#010x}")
            }
            SpillErrorKind::Torn { expected, got } => {
                write!(f, ": short frame ({got} of {expected} bytes)")
            }
            SpillErrorKind::HeaderMismatch { field, found, want } => {
                write!(f, ": header {field} is {found}, expected {want}")
            }
        }
    }
}

impl std::error::Error for SpillError {}

fn io_err(segment: &str, frame: Option<u32>, e: &io::Error) -> SpillError {
    let kind = if e.raw_os_error() == Some(28) {
        // ENOSPC
        SpillErrorKind::NoSpace
    } else {
        SpillErrorKind::Io(e.to_string())
    };
    SpillError {
        segment: segment.to_string(),
        frame,
        kind,
    }
}

// ---- segment header --------------------------------------------------------

/// Spill segment format version.
pub const SPILL_SCHEMA: u32 = 1;

const MAGIC: &[u8; 4] = b"OSSP";
/// On-disk header: magic + schema + cpu + n_cpus + scale_bits + seed + crc.
const HEADER_LEN: usize = 4 + 4 + 4 + 4 + 8 + 8 + 4;

/// The trace identity a store binds its segments to, mirroring the
/// journal header's schema/scale/seed/n_cpus binding: a segment can never
/// be confused with one written for a different build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreIdentity {
    /// `scale.to_bits()` of the trace build.
    pub scale_bits: u64,
    /// RNG seed of the trace build.
    pub seed: u64,
    /// CPU count of the traced machine.
    pub n_cpus: u32,
}

fn encode_header(id: &StoreIdentity, cpu: u32) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..4].copy_from_slice(MAGIC);
    h[4..8].copy_from_slice(&SPILL_SCHEMA.to_le_bytes());
    h[8..12].copy_from_slice(&cpu.to_le_bytes());
    h[12..16].copy_from_slice(&id.n_cpus.to_le_bytes());
    h[16..24].copy_from_slice(&id.scale_bits.to_le_bytes());
    h[24..32].copy_from_slice(&id.seed.to_le_bytes());
    let crc = crc32(&h[..HEADER_LEN - 4]);
    h[HEADER_LEN - 4..].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Reads and verifies a segment header, returning `(identity, cpu)`.
/// Used by tests and restart tooling; the writing process never re-reads
/// its own headers.
pub fn read_header(path: &Path, want: &StoreIdentity) -> Result<(StoreIdentity, u32), SpillError> {
    let segment = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut f = File::open(path).map_err(|e| io_err(&segment, None, &e))?;
    let mut h = [0u8; HEADER_LEN];
    f.read_exact(&mut h)
        .map_err(|e| io_err(&segment, None, &e))?;
    let mismatch = |field, found, want_v| SpillError {
        segment: segment.clone(),
        frame: None,
        kind: SpillErrorKind::HeaderMismatch {
            field,
            found,
            want: want_v,
        },
    };
    let crc = u32::from_le_bytes(h[HEADER_LEN - 4..].try_into().unwrap());
    let actual = crc32(&h[..HEADER_LEN - 4]);
    if crc != actual {
        return Err(mismatch("crc", u64::from(actual), u64::from(crc)));
    }
    if &h[0..4] != MAGIC {
        return Err(mismatch(
            "magic",
            u64::from(u32::from_le_bytes(h[0..4].try_into().unwrap())),
            u64::from(u32::from_le_bytes(*MAGIC)),
        ));
    }
    let schema = u32::from_le_bytes(h[4..8].try_into().unwrap());
    if schema != SPILL_SCHEMA {
        return Err(mismatch(
            "schema",
            u64::from(schema),
            u64::from(SPILL_SCHEMA),
        ));
    }
    let cpu = u32::from_le_bytes(h[8..12].try_into().unwrap());
    let id = StoreIdentity {
        n_cpus: u32::from_le_bytes(h[12..16].try_into().unwrap()),
        scale_bits: u64::from_le_bytes(h[16..24].try_into().unwrap()),
        seed: u64::from_le_bytes(h[24..32].try_into().unwrap()),
    };
    if id.n_cpus != want.n_cpus {
        return Err(mismatch(
            "n_cpus",
            u64::from(id.n_cpus),
            u64::from(want.n_cpus),
        ));
    }
    if id.scale_bits != want.scale_bits {
        return Err(mismatch("scale_bits", id.scale_bits, want.scale_bits));
    }
    if id.seed != want.seed {
        return Err(mismatch("seed", id.seed, want.seed));
    }
    Ok((id, cpu))
}

// ---- fault injection -------------------------------------------------------

/// A disk-fault class [`IoFaultPlan`] can inject at the write path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFaultClass {
    /// Only a prefix of the frame's payload reaches the file.
    ShortWrite,
    /// One bit of the payload is flipped on its way to the file.
    BitFlip,
    /// The write fails with ENOSPC; the device stays full from then on.
    NoSpace,
}

impl IoFaultClass {
    fn parse(s: &str) -> Option<IoFaultClass> {
        match s {
            "short-write" => Some(IoFaultClass::ShortWrite),
            "bit-flip" => Some(IoFaultClass::BitFlip),
            "enospc" => Some(IoFaultClass::NoSpace),
            _ => None,
        }
    }
}

/// Seeded, deterministic injection of disk faults at the [`SpillStore`]
/// write path (`--inject-io seed[:class]`). Roughly one frame in seven is
/// targeted; which frames, and (when no class is pinned) which fault each
/// gets, is a pure function of `(seed, cpu, frame)` — so a failing run
/// replays exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IoFaultPlan {
    /// Injection seed.
    pub seed: u64,
    /// Pin every injected fault to one class, or rotate by hash.
    pub class: Option<IoFaultClass>,
}

impl IoFaultPlan {
    /// Parses `seed` or `seed:class` (class ∈ `short-write`, `bit-flip`,
    /// `enospc`).
    pub fn parse(s: &str) -> Result<IoFaultPlan, String> {
        let (seed_s, class) = match s.split_once(':') {
            Some((a, b)) => {
                let c = IoFaultClass::parse(b).ok_or_else(|| {
                    format!("unknown I/O fault class {b:?} (short-write, bit-flip, enospc)")
                })?;
                (a, Some(c))
            }
            None => (s, None),
        };
        let seed: u64 = seed_s
            .parse()
            .map_err(|_| format!("bad I/O fault seed {seed_s:?}"))?;
        Ok(IoFaultPlan { seed, class })
    }

    /// The fault to inject when writing `frame` of `cpu`'s segment, if any.
    pub fn fires(&self, cpu: u32, frame: u32) -> Option<IoFaultClass> {
        let mut key = [0u8; 24];
        key[0..8].copy_from_slice(&self.seed.to_le_bytes());
        key[8..16].copy_from_slice(&u64::from(cpu).to_le_bytes());
        key[16..24].copy_from_slice(&u64::from(frame).to_le_bytes());
        let h = fnv1a64(&key);
        if !h.is_multiple_of(7) {
            return None;
        }
        Some(self.class.unwrap_or(match (h >> 3) % 3 {
            0 => IoFaultClass::ShortWrite,
            1 => IoFaultClass::BitFlip,
            _ => IoFaultClass::NoSpace,
        }))
    }
}

// ---- memory budget governor ------------------------------------------------

/// The memory-budget governor (`--mem-budget-mb`): decides at seal time
/// whether a chunk spills or stays resident, and accounts for both.
///
/// Accounting model: `resident` is the encoded bytes of governed chunks
/// held in memory. Governed traces are cached for the life of the process
/// (the trace cache pins base traces and analyses), so the counter is
/// monotonic in practice; [`MemBudget::release`] exists for eviction
/// paths. Chunks spill once `resident` would exceed **half** the budget —
/// the other half is headroom for decode windows, simulator state, and
/// the allocator, so the *process* stays under the budget, not just the
/// chunk bytes.
///
/// When spilling is degraded (a write failed; see
/// [`MemBudget::degraded`]) and `resident` exceeds the full budget, the
/// budget "cannot be met": enforcement points answer `overloaded`
/// instead of letting the process grow until the OOM killer answers for
/// them.
#[derive(Debug)]
pub struct MemBudget {
    budget: u64,
    resident: AtomicU64,
    spilled: AtomicU64,
    spill_ns: AtomicU64,
    degraded: AtomicBool,
}

impl MemBudget {
    /// A governor for a budget given in MB.
    pub fn new_mb(budget_mb: u64) -> Arc<MemBudget> {
        Arc::new(MemBudget {
            budget: budget_mb.saturating_mul(1024 * 1024),
            resident: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            spill_ns: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
        })
    }

    /// The budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// True when a chunk of `len` bytes should spill rather than stay
    /// resident.
    pub fn wants_spill(&self, len: usize) -> bool {
        self.resident.load(Ordering::Relaxed) + len as u64 > self.budget / 2
    }

    /// Accounts for a chunk kept resident.
    pub fn charge_inline(&self, len: usize) {
        self.resident.fetch_add(len as u64, Ordering::Relaxed);
    }

    /// Releases resident accounting (eviction / drop paths).
    pub fn release(&self, len: usize) {
        self.resident.fetch_sub(len as u64, Ordering::Relaxed);
    }

    /// Accounts for a chunk spilled to disk in `ns` nanoseconds.
    pub fn note_spilled(&self, len: usize, ns: u64) {
        self.spilled.fetch_add(len as u64, Ordering::Relaxed);
        self.spill_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Marks the governor degraded: a spill write failed, so chunks that
    /// wanted to spill are staying resident.
    pub fn note_degraded(&self) {
        self.degraded.store(true, Ordering::Relaxed);
    }

    /// True when a spill write has failed.
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// True when the budget cannot be met: spilling is degraded and the
    /// resident governed bytes alone exceed the full budget.
    pub fn exhausted(&self) -> bool {
        self.degraded() && self.resident.load(Ordering::Relaxed) > self.budget
    }

    /// Governed bytes currently resident in memory.
    pub fn resident_bytes(&self) -> u64 {
        self.resident.load(Ordering::Relaxed)
    }

    /// Bytes spilled to disk so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled.load(Ordering::Relaxed)
    }

    /// Wall-clock milliseconds spent writing spill frames so far.
    pub fn spill_ms(&self) -> f64 {
        self.spill_ns.load(Ordering::Relaxed) as f64 / 1e6
    }
}

// ---- the store -------------------------------------------------------------

/// Where one spilled chunk lives: its segment, its ordinal within the
/// segment, its chunk index within the owning stream (the rebuilder's
/// key), and the byte range + CRC that pin its true contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameRef {
    /// CPU whose segment holds the frame.
    pub cpu: u32,
    /// Frame ordinal within the segment file.
    pub frame: u32,
    /// Chunk index within the owning stream (for rebuild).
    pub chunk: u32,
    /// Byte offset of the frame's payload in the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// CRC-32 of the true payload, recorded before any injected fault.
    pub crc: u32,
}

/// Re-derives a spilled chunk's true encoded bytes from first principles
/// (the deterministic generator or transform), keyed by `(cpu, chunk)`.
pub type Rebuilder = dyn Fn(usize, usize) -> Option<Vec<u8>> + Send + Sync;

/// Everything a chunk builder needs to spill at seal time: the store, the
/// CPU whose segment it appends to, and the governor that decides whether
/// each sealed chunk spills or stays resident.
#[derive(Clone, Debug)]
pub struct SpillTarget {
    /// Destination store.
    pub store: Arc<SpillStore>,
    /// CPU stream this builder produces (segment index).
    pub cpu: usize,
    /// The memory-budget governor consulted per sealed chunk.
    pub budget: Arc<MemBudget>,
}

enum SegmentState {
    /// Open for appends (and reads of already-written frames).
    Writing { file: File, next: u64, frames: u32 },
    /// Renamed to `.seg`; read-only from here.
    Sealed { file: File },
    /// The segment is unusable (seal failed); reads go straight to the
    /// rebuilder.
    Failed,
}

struct Segment {
    name: String,
    state: SegmentState,
}

static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);
static GC_ONCE: std::sync::Once = std::sync::Once::new();

/// Quarantined-and-rebuilt frame payloads, keyed by `(cpu, chunk)`.
type SalvageCache = Mutex<HashMap<(u32, u32), Arc<Vec<u8>>>>;

/// A per-trace spill store: one segment file per CPU under
/// `$TMPDIR/oscache-spill-<pid>/<label>-<n>/`.
pub struct SpillStore {
    dir: PathBuf,
    identity: StoreIdentity,
    segments: Vec<Mutex<Segment>>,
    faults: Option<IoFaultPlan>,
    /// Sticky ENOSPC: once the device is full, stop trying.
    no_space: AtomicBool,
    rebuilder: Mutex<Option<Box<Rebuilder>>>,
    /// Quarantined frames already rebuilt, keyed by `(cpu, chunk)`.
    salvaged: SalvageCache,
    salvages: AtomicU64,
}

impl std::fmt::Debug for SpillStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpillStore")
            .field("dir", &self.dir)
            .field("identity", &self.identity)
            .field("salvages", &self.salvages.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// The process-private spill root, `$TMPDIR/oscache-spill-<pid>`.
pub fn spill_root() -> PathBuf {
    std::env::temp_dir().join(format!("oscache-spill-{}", std::process::id()))
}

/// Removes spill roots left behind by processes that no longer exist
/// (kill -9 mid-spill). Best-effort; errors are ignored. Runs once per
/// process, from the first store creation.
fn sweep_dead_roots() {
    let tmp = std::env::temp_dir();
    let Ok(entries) = fs::read_dir(&tmp) else {
        return;
    };
    let me = std::process::id();
    for e in entries.flatten() {
        let name = e.file_name();
        let Some(pid) = name
            .to_str()
            .and_then(|n| n.strip_prefix("oscache-spill-"))
            .and_then(|p| p.parse::<u32>().ok())
        else {
            continue;
        };
        if pid != me && !Path::new(&format!("/proc/{pid}")).exists() {
            let _ = fs::remove_dir_all(e.path());
        }
    }
}

impl SpillStore {
    /// Creates a store with one open segment per CPU, headers written.
    ///
    /// `label` names the store's directory (diagnostics only); `faults`
    /// arms write-path fault injection.
    pub fn create(
        label: &str,
        identity: StoreIdentity,
        n_cpus: usize,
        faults: Option<IoFaultPlan>,
    ) -> Result<Arc<SpillStore>, SpillError> {
        GC_ONCE.call_once(sweep_dead_roots);
        let clean: String = label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let n = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = spill_root().join(format!("{clean}-{n}"));
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir.to_string_lossy(), None, &e))?;
        let mut segments = Vec::with_capacity(n_cpus);
        for cpu in 0..n_cpus {
            let name = format!("cpu-{cpu:02}");
            let path = dir.join(format!("{name}.tmp"));
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)
                .map_err(|e| io_err(&name, None, &e))?;
            let header = encode_header(&identity, cpu as u32);
            file.write_all_at(&header, 0)
                .map_err(|e| io_err(&name, None, &e))?;
            segments.push(Mutex::new(Segment {
                name,
                state: SegmentState::Writing {
                    file,
                    next: HEADER_LEN as u64,
                    frames: 0,
                },
            }));
        }
        Ok(Arc::new(SpillStore {
            dir,
            identity,
            segments,
            faults,
            no_space: AtomicBool::new(false),
            rebuilder: Mutex::new(None),
            salvaged: Mutex::new(HashMap::new()),
            salvages: AtomicU64::new(0),
        }))
    }

    /// The store's directory (tests inspect and corrupt it).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The identity its segment headers bind.
    pub fn identity(&self) -> StoreIdentity {
        self.identity
    }

    /// Installs the function that re-derives a chunk's true bytes when a
    /// frame fails verification. Replaces any previous rebuilder.
    pub fn set_rebuilder(&self, f: Box<Rebuilder>) {
        *lock_tolerant(&self.rebuilder) = Some(f);
    }

    /// Frames salvaged (quarantined and rebuilt) so far.
    pub fn salvage_count(&self) -> u64 {
        self.salvages.load(Ordering::Relaxed)
    }

    /// Appends one sealed chunk (`chunk`-th of `cpu`'s stream) as a frame.
    ///
    /// On success the returned [`FrameRef`] pins the payload's true CRC —
    /// injected corruption (short write, bit flip) damages only the file,
    /// so verification at read time catches it. A failed write (real or
    /// injected ENOSPC) leaves the file's committed frames intact and
    /// returns an error; the caller keeps the chunk in memory.
    pub fn append_frame(
        &self,
        cpu: usize,
        chunk: usize,
        bytes: &[u8],
    ) -> Result<FrameRef, SpillError> {
        let mut seg = lock_tolerant(&self.segments[cpu]);
        let name = seg.name.clone();
        if self.no_space.load(Ordering::Relaxed) {
            return Err(SpillError {
                segment: name,
                frame: None,
                kind: SpillErrorKind::NoSpace,
            });
        }
        let SegmentState::Writing { file, next, frames } = &mut seg.state else {
            return Err(SpillError {
                segment: name,
                frame: None,
                kind: SpillErrorKind::Io("segment is not open for writing".into()),
            });
        };
        let frame_no = *frames;
        let crc = crc32(bytes);
        let fault = self.faults.and_then(|p| p.fires(cpu as u32, frame_no));
        if fault == Some(IoFaultClass::NoSpace) {
            self.no_space.store(true, Ordering::Relaxed);
            return Err(SpillError {
                segment: name,
                frame: Some(frame_no),
                kind: SpillErrorKind::NoSpace,
            });
        }
        let offset = *next;
        let mut prefix = [0u8; 8];
        prefix[0..4].copy_from_slice(&(bytes.len() as u32).to_le_bytes());
        prefix[4..8].copy_from_slice(&crc.to_le_bytes());
        let write = |payload: &[u8]| -> io::Result<()> {
            file.write_all_at(&prefix, offset)?;
            file.write_all_at(payload, offset + 8)
        };
        let res = match fault {
            Some(IoFaultClass::ShortWrite) => write(&bytes[..bytes.len() / 2]),
            Some(IoFaultClass::BitFlip) => {
                let mut flipped = bytes.to_vec();
                let bit = fnv1a64(&offset.to_le_bytes()) as usize % (flipped.len() * 8);
                flipped[bit / 8] ^= 1 << (bit % 8);
                write(&flipped)
            }
            _ => write(bytes),
        };
        if let Err(e) = res {
            let err = io_err(&name, Some(frame_no), &e);
            if err.kind == SpillErrorKind::NoSpace {
                self.no_space.store(true, Ordering::Relaxed);
            }
            return Err(err);
        }
        *next = offset + 8 + bytes.len() as u64;
        *frames += 1;
        Ok(FrameRef {
            cpu: cpu as u32,
            frame: frame_no,
            chunk: chunk as u32,
            offset: offset + 8,
            len: bytes.len() as u32,
            crc,
        })
    }

    /// Seals `cpu`'s segment: renames `cpu-NN.tmp` to `cpu-NN.seg`. The
    /// open handle stays valid across the rename, so committed frames
    /// remain readable even if the rename fails (the segment is then
    /// marked failed and reads fall back to the rebuilder).
    pub fn seal(&self, cpu: usize) -> Result<(), SpillError> {
        let mut seg = lock_tolerant(&self.segments[cpu]);
        let name = seg.name.clone();
        match std::mem::replace(&mut seg.state, SegmentState::Failed) {
            SegmentState::Writing { file, .. } => {
                let from = self.dir.join(format!("{name}.tmp"));
                let to = self.dir.join(format!("{name}.seg"));
                match fs::rename(&from, &to) {
                    Ok(()) => {
                        seg.state = SegmentState::Sealed { file };
                        Ok(())
                    }
                    Err(e) => Err(io_err(&name, None, &e)),
                }
            }
            other => {
                seg.state = other;
                Ok(())
            }
        }
    }

    /// The sealed path of `cpu`'s segment (tests re-open headers).
    pub fn segment_path(&self, cpu: usize) -> PathBuf {
        self.dir.join(format!("cpu-{cpu:02}.seg"))
    }

    /// The true payload of `frame`, verifying length and CRC, salvaging
    /// through quarantine-and-rebuild on any mismatch.
    ///
    /// # Panics
    ///
    /// Panics (with the underlying [`SpillError`] in the message) only
    /// when a frame is unreadable *and* no rebuilder can produce bytes
    /// matching the recorded CRC — an unrecoverable internal error, which
    /// the per-cell supervision layer catches and reports as a typed cell
    /// failure rather than a process abort.
    pub fn frame_bytes(&self, frame: &FrameRef) -> Arc<Vec<u8>> {
        match self.try_read_frame(frame) {
            Ok(bytes) => Arc::new(bytes),
            Err(e) => self.salvage(frame, &e),
        }
    }

    fn try_read_frame(&self, frame: &FrameRef) -> Result<Vec<u8>, SpillError> {
        let seg = lock_tolerant(&self.segments[frame.cpu as usize]);
        let name = seg.name.clone();
        let file = match &seg.state {
            SegmentState::Writing { file, .. } | SegmentState::Sealed { file } => file,
            SegmentState::Failed => {
                return Err(SpillError {
                    segment: name,
                    frame: Some(frame.frame),
                    kind: SpillErrorKind::Io("segment failed to seal".into()),
                })
            }
        };
        let mut buf = vec![0u8; frame.len as usize];
        if let Err(e) = file.read_exact_at(&mut buf, frame.offset) {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                let got = file
                    .metadata()
                    .map(|m| m.len().saturating_sub(frame.offset))
                    .unwrap_or(0);
                return Err(SpillError {
                    segment: name,
                    frame: Some(frame.frame),
                    kind: SpillErrorKind::Torn {
                        expected: frame.len,
                        got,
                    },
                });
            }
            return Err(io_err(&name, Some(frame.frame), &e));
        }
        let found = crc32(&buf);
        if found != frame.crc {
            return Err(SpillError {
                segment: name,
                frame: Some(frame.frame),
                kind: SpillErrorKind::Corrupt {
                    expected: frame.crc,
                    found,
                },
            });
        }
        Ok(buf)
    }

    /// Quarantine-and-rebuild: re-derive the chunk from the generator,
    /// verify against the recorded CRC, cache, and log one structured
    /// stderr line.
    fn salvage(&self, frame: &FrameRef, err: &SpillError) -> Arc<Vec<u8>> {
        let key = (frame.cpu, frame.chunk);
        if let Some(bytes) = lock_tolerant(&self.salvaged).get(&key) {
            return bytes.clone();
        }
        let rebuilt = {
            let rb = lock_tolerant(&self.rebuilder);
            rb.as_ref()
                .and_then(|f| f(frame.cpu as usize, frame.chunk as usize))
        };
        let Some(bytes) = rebuilt else {
            panic!("unrecoverable spill frame (no rebuilder or chunk unknown): {err}");
        };
        assert_eq!(
            crc32(&bytes),
            frame.crc,
            "rebuilder produced bytes not matching the recorded CRC for {err}"
        );
        eprintln!(
            "warning: class=spill-salvage segment={} frame={} chunk={} msg=\"{}; chunk quarantined and rebuilt from the generator\"",
            err.segment, frame.frame, frame.chunk, err.kind_msg()
        );
        self.salvages.fetch_add(1, Ordering::Relaxed);
        let bytes = Arc::new(bytes);
        lock_tolerant(&self.salvaged)
            .entry(key)
            .or_insert_with(|| bytes.clone())
            .clone()
    }
}

impl SpillError {
    fn kind_msg(&self) -> String {
        match &self.kind {
            SpillErrorKind::Io(m) => format!("io error: {m}"),
            SpillErrorKind::NoSpace => "no space on device".into(),
            SpillErrorKind::Corrupt { expected, found } => {
                format!("payload crc {found:#010x} != {expected:#010x}")
            }
            SpillErrorKind::Torn { expected, got } => {
                format!("short frame ({got} of {expected} bytes)")
            }
            SpillErrorKind::HeaderMismatch { field, found, want } => {
                format!("header {field} is {found}, expected {want}")
            }
        }
    }
}

impl Drop for SpillStore {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.dir);
    }
}

/// Locks a mutex, tolerating poison: all state guarded here is write-once
/// or append-only, so a panicked holder cannot leave it inconsistent
/// (same reasoning as the trace cache's `lock_tolerant`).
fn lock_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id() -> StoreIdentity {
        StoreIdentity {
            scale_bits: 1.0f64.to_bits(),
            seed: 42,
            n_cpus: 2,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_and_headers_verify() {
        let store = SpillStore::create("t-roundtrip", id(), 2, None).unwrap();
        let a = store.append_frame(0, 0, b"hello chunk").unwrap();
        let b = store.append_frame(0, 1, b"second").unwrap();
        let c = store.append_frame(1, 0, b"other cpu").unwrap();
        store.seal(0).unwrap();
        store.seal(1).unwrap();
        assert_eq!(&*store.frame_bytes(&a), b"hello chunk");
        assert_eq!(&*store.frame_bytes(&b), b"second");
        assert_eq!(&*store.frame_bytes(&c), b"other cpu");
        let (got, cpu) = read_header(&store.segment_path(1), &id()).unwrap();
        assert_eq!(got, id());
        assert_eq!(cpu, 1);
        // A different identity is rejected field-by-field.
        let other = StoreIdentity { seed: 43, ..id() };
        let err = read_header(&store.segment_path(1), &other).unwrap_err();
        assert!(matches!(
            err.kind,
            SpillErrorKind::HeaderMismatch { field: "seed", .. }
        ));
    }

    #[test]
    fn corrupt_frame_is_quarantined_and_rebuilt() {
        let store = SpillStore::create("t-salvage", id(), 1, None).unwrap();
        let payload = b"the true bytes".to_vec();
        let fr = store.append_frame(0, 3, &payload).unwrap();
        store.seal(0).unwrap();
        // Flip a byte on disk behind the store's back.
        {
            let f = OpenOptions::new()
                .write(true)
                .open(store.segment_path(0))
                .unwrap();
            f.write_all_at(b"X", fr.offset).unwrap();
        }
        let p = payload.clone();
        store.set_rebuilder(Box::new(move |cpu, chunk| {
            assert_eq!((cpu, chunk), (0, 3));
            Some(p.clone())
        }));
        assert_eq!(&*store.frame_bytes(&fr), &payload);
        assert_eq!(store.salvage_count(), 1);
        // Second read hits the quarantine cache, no second salvage.
        assert_eq!(&*store.frame_bytes(&fr), &payload);
        assert_eq!(store.salvage_count(), 1);
    }

    #[test]
    fn torn_tail_is_detected() {
        let store = SpillStore::create("t-torn", id(), 1, None).unwrap();
        let fr = store.append_frame(0, 0, b"will be truncated").unwrap();
        store.seal(0).unwrap();
        let f = OpenOptions::new()
            .write(true)
            .open(store.segment_path(0))
            .unwrap();
        f.set_len(fr.offset + 4).unwrap();
        let err = store.try_read_frame(&fr).unwrap_err();
        assert!(matches!(err.kind, SpillErrorKind::Torn { .. }), "{err}");
    }

    #[test]
    fn injected_enospc_is_sticky() {
        // Class pinned to enospc: the first targeted frame flips the
        // store into no-space; every later append fails fast.
        let plan = IoFaultPlan::parse("7:enospc").unwrap();
        let store = SpillStore::create("t-enospc", id(), 1, Some(plan)).unwrap();
        let mut first_err = None;
        for k in 0..64 {
            if let Err(e) = store.append_frame(0, k, b"payload") {
                first_err = Some(e);
                break;
            }
        }
        let e = first_err.expect("plan 7:enospc never fired in 64 frames");
        assert_eq!(e.kind, SpillErrorKind::NoSpace);
        let e2 = store.append_frame(0, 999, b"more").unwrap_err();
        assert_eq!(e2.kind, SpillErrorKind::NoSpace);
    }

    #[test]
    fn injected_short_write_and_bit_flip_salvage() {
        for class in ["short-write", "bit-flip"] {
            let plan = IoFaultPlan::parse(&format!("11:{class}")).unwrap();
            let store = SpillStore::create("t-inject", id(), 1, Some(plan)).unwrap();
            let chunks: Vec<Vec<u8>> = (0..64u32)
                .map(|k| format!("chunk payload number {k}").into_bytes())
                .collect();
            let mut frames = Vec::new();
            for (k, c) in chunks.iter().enumerate() {
                frames.push(store.append_frame(0, k, c).unwrap());
            }
            store.seal(0).unwrap();
            let hit: Vec<usize> = frames
                .iter()
                .enumerate()
                .filter(|(_, f)| store.try_read_frame(f).is_err())
                .map(|(k, _)| k)
                .collect();
            assert!(!hit.is_empty(), "{class}: no frame was corrupted");
            let cs = chunks.clone();
            store.set_rebuilder(Box::new(move |_cpu, chunk| Some(cs[chunk].clone())));
            for (k, f) in frames.iter().enumerate() {
                assert_eq!(&*store.frame_bytes(f), &chunks[k], "{class}: frame {k}");
            }
            assert_eq!(store.salvage_count(), hit.len() as u64, "{class}");
        }
    }

    #[test]
    fn fault_plan_parses_and_is_deterministic() {
        assert_eq!(
            IoFaultPlan::parse("5").unwrap(),
            IoFaultPlan {
                seed: 5,
                class: None
            }
        );
        assert_eq!(
            IoFaultPlan::parse("5:bit-flip").unwrap().class,
            Some(IoFaultClass::BitFlip)
        );
        assert!(IoFaultPlan::parse("x").is_err());
        assert!(IoFaultPlan::parse("5:meteor").is_err());
        let p = IoFaultPlan {
            seed: 9,
            class: None,
        };
        let fired: Vec<_> = (0..100).map(|f| p.fires(0, f)).collect();
        assert_eq!(fired, (0..100).map(|f| p.fires(0, f)).collect::<Vec<_>>());
        assert!(fired.iter().any(Option::is_some));
        assert!(fired.iter().any(Option::is_none));
    }

    #[test]
    fn budget_governs_spill_decisions() {
        let b = MemBudget::new_mb(1); // 1 MB budget, 512 KB spill threshold
        assert!(!b.wants_spill(1024));
        b.charge_inline(512 * 1024);
        assert!(b.wants_spill(1024));
        assert!(!b.exhausted(), "not degraded yet");
        b.note_degraded();
        assert!(!b.exhausted(), "resident still under the full budget");
        b.charge_inline(600 * 1024);
        assert!(b.exhausted());
        b.release(600 * 1024);
        assert!(!b.exhausted());
        b.note_spilled(1000, 2_000_000);
        assert_eq!(b.spilled_bytes(), 1000);
        assert!((b.spill_ms() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn store_drop_removes_its_directory() {
        let dir;
        {
            let store = SpillStore::create("t-drop", id(), 1, None).unwrap();
            store.append_frame(0, 0, b"x").unwrap();
            dir = store.dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }

    #[test]
    fn spill_env_gate_parses_like_the_other_gates() {
        // Can't mutate the process env safely in a parallel test run;
        // just pin the default.
        assert!(spill_enabled() || std::env::var_os("REPRO_NO_SPILL").is_some());
    }
}
