//! Compact chunked trace storage: the streaming backbone.
//!
//! A [`ChunkedStream`] holds a CPU's reference stream as a sequence of
//! independently-decodable [`EncodedChunk`]s of a fixed event capacity
//! (the last chunk may be short). Events are byte-packed with
//! delta-encoded addresses and LEB128 varints, which shrinks a stream
//! from 16 bytes per materialized [`Event`] to typically 2–6 bytes —
//! and, more importantly, lets every consumer work from a decode window
//! of one chunk instead of a flat `Vec<Event>` of the whole trace.
//!
//! Design invariants (DESIGN.md §16):
//!
//! * **Fixed capacity**: every chunk except the last holds exactly
//!   [`ChunkedStream::capacity`] events, so the chunk containing event
//!   `i` is `i / capacity` — random access is O(1) chunk lookup plus one
//!   bounded decode, which is what the simulator's lock-retry and
//!   block-op scans need.
//! * **Independent chunks**: the delta-encoder state resets at every
//!   chunk boundary (the first address in a chunk is a delta from 0), so
//!   a chunk decodes without touching its predecessors.
//! * **Lossless**: encoding is a bijection on well-formed events; the
//!   round-trip tests and the cross-crate streaming oracle pin
//!   `decode(encode(e)) == e` for every event, which is the ground the
//!   bitwise simulation-equivalence guarantee stands on.

use crate::spill::{FrameRef, MemBudget, SpillStore, SpillTarget};
use crate::validate::TraceValidator;
use crate::{
    Addr, BarrierId, BlockId, BlockKind, BlockOp, DataClass, Event, LockId, Mode, Stream, Trace,
    TraceError, TraceMeta,
};
use std::sync::Arc;
use std::time::Instant;

/// Default events per chunk. 4096 events decode to a 64 KiB window —
/// small enough to live in L2 while a per-CPU cursor replays it, large
/// enough that re-decode overhead is amortized over thousands of events.
pub const CHUNK_EVENTS: usize = 4096;

// ---- event byte codec ------------------------------------------------------

const TAG_EXEC: u8 = 0;
const TAG_READ: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_PREFETCH: u8 = 3;
const TAG_LOCK_ACQUIRE: u8 = 4;
const TAG_LOCK_RELEASE: u8 = 5;
const TAG_BARRIER: u8 = 6;
const TAG_BLOCK_BEGIN: u8 = 7;
const TAG_BLOCK_END: u8 = 8;
const TAG_SET_MODE: u8 = 9;
const TAG_IDLE: u8 = 10;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> u64 {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = bytes[*pos];
        *pos += 1;
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn push_delta(out: &mut Vec<u8>, last: &mut u32, addr: Addr) {
    push_varint(out, zigzag(i64::from(addr.0) - i64::from(*last)));
    *last = addr.0;
}

fn read_delta(bytes: &[u8], pos: &mut usize, last: &mut u32) -> Addr {
    let a = (i64::from(*last) + unzigzag(read_varint(bytes, pos))) as u32;
    *last = a;
    Addr(a)
}

fn class_byte(c: DataClass) -> u8 {
    match c {
        DataClass::BarrierVar => 0,
        DataClass::LockVar => 1,
        DataClass::InfreqCounter => 2,
        DataClass::FreqShared => 3,
        DataClass::Freelist => 4,
        DataClass::CpiEvents => 5,
        DataClass::PageTable => 6,
        DataClass::ProcTable => 7,
        DataClass::RunQueue => 8,
        DataClass::SyscallTable => 9,
        DataClass::TimerStruct => 10,
        DataClass::BufferCache => 11,
        DataClass::KernelStack => 12,
        DataClass::KernelOther => 13,
        DataClass::PageFrame => 14,
        DataClass::UserData => 15,
        DataClass::UserStack => 16,
    }
}

fn byte_class(b: u8) -> DataClass {
    // `class_byte` is the index of the variant in `DataClass::all()`'s
    // declaration order; the round-trip test pins the agreement.
    DataClass::all()[usize::from(b)]
}

/// Appends `e` to `out`, updating the running address `last`.
fn encode_event(out: &mut Vec<u8>, last: &mut u32, e: &Event) {
    match *e {
        Event::Exec { block } => {
            out.push(TAG_EXEC);
            push_varint(out, u64::from(block.0));
        }
        Event::Read { addr, class } => {
            out.push(TAG_READ);
            out.push(class_byte(class));
            push_delta(out, last, addr);
        }
        Event::Write { addr, class } => {
            out.push(TAG_WRITE);
            out.push(class_byte(class));
            push_delta(out, last, addr);
        }
        Event::Prefetch { addr, class } => {
            out.push(TAG_PREFETCH);
            out.push(class_byte(class));
            push_delta(out, last, addr);
        }
        Event::LockAcquire { lock, addr } => {
            out.push(TAG_LOCK_ACQUIRE);
            push_varint(out, u64::from(lock.0));
            push_delta(out, last, addr);
        }
        Event::LockRelease { lock, addr } => {
            out.push(TAG_LOCK_RELEASE);
            push_varint(out, u64::from(lock.0));
            push_delta(out, last, addr);
        }
        Event::Barrier {
            barrier,
            addr,
            participants,
        } => {
            out.push(TAG_BARRIER);
            push_varint(out, u64::from(barrier.0));
            push_delta(out, last, addr);
            out.push(participants);
        }
        Event::BlockOpBegin { op } => {
            let kind = match op.kind {
                BlockKind::Copy => 0u8,
                BlockKind::Zero => 1u8,
            };
            out.push(TAG_BLOCK_BEGIN | (kind << 4));
            push_delta(out, last, op.src);
            push_delta(out, last, op.dst);
            push_varint(out, u64::from(op.len));
            out.push(class_byte(op.src_class));
            out.push(class_byte(op.dst_class));
        }
        Event::BlockOpEnd => out.push(TAG_BLOCK_END),
        Event::SetMode { mode } => {
            let m = u8::from(mode.is_os());
            out.push(TAG_SET_MODE | (m << 4));
        }
        Event::Idle { cycles } => {
            out.push(TAG_IDLE);
            push_varint(out, u64::from(cycles));
        }
    }
}

/// Decodes one event from `bytes` at `pos`, updating the running address.
fn decode_event(bytes: &[u8], pos: &mut usize, last: &mut u32) -> Event {
    let tag = bytes[*pos];
    *pos += 1;
    let (kind, payload) = (tag & 0x0f, tag >> 4);
    match kind {
        TAG_EXEC => Event::Exec {
            block: BlockId(read_varint(bytes, pos) as u32),
        },
        TAG_READ | TAG_WRITE | TAG_PREFETCH => {
            let class = byte_class(bytes[*pos]);
            *pos += 1;
            let addr = read_delta(bytes, pos, last);
            match kind {
                TAG_READ => Event::Read { addr, class },
                TAG_WRITE => Event::Write { addr, class },
                _ => Event::Prefetch { addr, class },
            }
        }
        TAG_LOCK_ACQUIRE | TAG_LOCK_RELEASE => {
            let lock = LockId(read_varint(bytes, pos) as u16);
            let addr = read_delta(bytes, pos, last);
            if kind == TAG_LOCK_ACQUIRE {
                Event::LockAcquire { lock, addr }
            } else {
                Event::LockRelease { lock, addr }
            }
        }
        TAG_BARRIER => {
            let barrier = BarrierId(read_varint(bytes, pos) as u16);
            let addr = read_delta(bytes, pos, last);
            let participants = bytes[*pos];
            *pos += 1;
            Event::Barrier {
                barrier,
                addr,
                participants,
            }
        }
        TAG_BLOCK_BEGIN => {
            let kind = if payload & 1 == 1 {
                BlockKind::Zero
            } else {
                BlockKind::Copy
            };
            let src = read_delta(bytes, pos, last);
            let dst = read_delta(bytes, pos, last);
            let len = read_varint(bytes, pos) as u32;
            let src_class = byte_class(bytes[*pos]);
            let dst_class = byte_class(bytes[*pos + 1]);
            *pos += 2;
            Event::BlockOpBegin {
                op: BlockOp {
                    src,
                    dst,
                    len,
                    kind,
                    src_class,
                    dst_class,
                },
            }
        }
        TAG_BLOCK_END => Event::BlockOpEnd,
        TAG_SET_MODE => Event::SetMode {
            mode: if payload & 1 == 1 {
                Mode::Os
            } else {
                Mode::User
            },
        },
        TAG_IDLE => Event::Idle {
            cycles: read_varint(bytes, pos) as u32,
        },
        other => unreachable!("corrupt chunk: unknown event tag {other}"),
    }
}

// ---- chunk / stream / trace types ------------------------------------------

/// One independently-decodable run of byte-packed events.
///
/// The payload lives either in memory or in a [`SpillStore`] segment
/// frame — the *chunk source* seam: every consumer decodes through
/// [`EncodedChunk::decode_into`], which is source-agnostic, so the
/// generators, the transform pipeline, and the replay loops never know
/// (or care) whether a chunk was spilled.
#[derive(Clone, Debug)]
pub struct EncodedChunk {
    /// Number of events in this chunk.
    n_events: u32,
    /// Where the packed event bytes live.
    payload: ChunkPayload,
}

/// Where a chunk's encoded bytes are held.
#[derive(Clone, Debug)]
enum ChunkPayload {
    /// Resident in memory (the historical representation).
    Inline(Vec<u8>),
    /// On disk, as a CRC-checked frame in a spill segment.
    Spilled {
        /// The owning store (keeps the segment files alive).
        store: Arc<SpillStore>,
        /// Which frame.
        frame: FrameRef,
    },
}

impl EncodedChunk {
    /// Number of events in this chunk.
    pub fn len(&self) -> usize {
        self.n_events as usize
    }

    /// True when the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.n_events == 0
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        match &self.payload {
            ChunkPayload::Inline(b) => b.len(),
            ChunkPayload::Spilled { frame, .. } => frame.len as usize,
        }
    }

    /// True when the payload lives on disk.
    pub fn is_spilled(&self) -> bool {
        matches!(self.payload, ChunkPayload::Spilled { .. })
    }

    /// Runs `f` over the encoded bytes, fetching (and, on corruption,
    /// salvaging) them from the spill store when the chunk is spilled.
    fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        match &self.payload {
            ChunkPayload::Inline(b) => f(b),
            ChunkPayload::Spilled { store, frame } => f(&store.frame_bytes(frame)),
        }
    }

    /// The encoded bytes, materialized (reading through the spill store
    /// when needed). Rebuild and conversion paths use this; decoding goes
    /// through [`EncodedChunk::decode_into`] without the copy.
    pub fn encoded_bytes(&self) -> Vec<u8> {
        self.with_bytes(<[u8]>::to_vec)
    }

    /// Appends this chunk's decoded events to `out`.
    pub fn decode_into(&self, out: &mut Vec<Event>) {
        out.reserve(self.len());
        self.with_bytes(|bytes| {
            let mut pos = 0usize;
            let mut last = 0u32;
            for _ in 0..self.n_events {
                out.push(decode_event(bytes, &mut pos, &mut last));
            }
            debug_assert_eq!(pos, bytes.len(), "trailing bytes in chunk");
        });
    }
}

impl PartialEq for EncodedChunk {
    fn eq(&self, other: &Self) -> bool {
        if self.n_events != other.n_events {
            return false;
        }
        match (&self.payload, &other.payload) {
            (ChunkPayload::Inline(a), ChunkPayload::Inline(b)) => a == b,
            // At least one side is spilled: compare materialized bytes
            // (test/oracle territory — the hot paths never compare chunks).
            _ => self.encoded_bytes() == other.encoded_bytes(),
        }
    }
}

impl Eq for EncodedChunk {}

/// Incremental chunk encoder: push events, get a [`ChunkedStream`].
///
/// Only the current (partial) chunk's bytes are mutable state; completed
/// chunks are sealed as they fill, so a builder's peak overhead over the
/// encoded output is one chunk's bytes.
#[derive(Debug)]
pub struct ChunkedStreamBuilder {
    capacity: usize,
    chunks: Vec<EncodedChunk>,
    cur: Vec<u8>,
    cur_events: u32,
    last_addr: u32,
    len: usize,
    spill: Option<SpillTarget>,
}

impl ChunkedStreamBuilder {
    /// A builder with the default [`CHUNK_EVENTS`] capacity.
    pub fn new() -> Self {
        Self::with_capacity(CHUNK_EVENTS)
    }

    /// A builder with an explicit per-chunk event capacity (tests use
    /// tiny capacities to exercise boundary handling).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "chunk capacity must be positive");
        ChunkedStreamBuilder {
            capacity,
            chunks: Vec::new(),
            cur: Vec::new(),
            cur_events: 0,
            last_addr: 0,
            len: 0,
            spill: None,
        }
    }

    /// A default-capacity builder that consults `target`'s budget at
    /// every seal: chunks the budget refuses to keep resident are written
    /// to the target's segment as they seal, so a governed build's peak
    /// memory stays O(chunk) rather than O(trace). A failed spill write
    /// degrades to keeping that chunk resident (and flags the budget) —
    /// the built stream is identical either way.
    pub fn with_spill(target: SpillTarget) -> Self {
        let mut b = Self::with_capacity(CHUNK_EVENTS);
        b.spill = Some(target);
        b
    }

    /// Appends one event.
    pub fn push(&mut self, e: Event) {
        encode_event(&mut self.cur, &mut self.last_addr, &e);
        self.cur_events += 1;
        self.len += 1;
        if self.cur_events as usize == self.capacity {
            self.seal();
        }
    }

    fn seal(&mut self) {
        let bytes = std::mem::take(&mut self.cur);
        let payload = seal_payload(bytes, self.chunks.len(), self.spill.as_ref());
        self.chunks.push(EncodedChunk {
            n_events: self.cur_events,
            payload,
        });
        self.cur_events = 0;
        // Each chunk decodes independently: the delta base resets.
        self.last_addr = 0;
    }

    /// Events pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Seals the trailing partial chunk and returns the finished stream.
    /// A spilling builder also seals its segment (temp-then-rename); a
    /// failed seal degrades to rebuild-on-read, never to an error here.
    pub fn finish(mut self) -> ChunkedStream {
        if self.cur_events > 0 {
            self.seal();
        }
        if let Some(t) = &self.spill {
            let _ = t.store.seal(t.cpu);
        }
        ChunkedStream {
            chunks: self.chunks,
            len: self.len,
            capacity: self.capacity,
        }
    }
}

/// Decides where a freshly-sealed chunk's bytes live: spilled to the
/// target's segment when the budget wants it (and the write succeeds),
/// resident otherwise.
fn seal_payload(bytes: Vec<u8>, chunk_idx: usize, spill: Option<&SpillTarget>) -> ChunkPayload {
    let Some(t) = spill else {
        return ChunkPayload::Inline(bytes);
    };
    if t.budget.wants_spill(bytes.len()) {
        let t0 = Instant::now();
        match t.store.append_frame(t.cpu, chunk_idx, &bytes) {
            Ok(frame) => {
                t.budget
                    .note_spilled(bytes.len(), t0.elapsed().as_nanos() as u64);
                return ChunkPayload::Spilled {
                    store: t.store.clone(),
                    frame,
                };
            }
            Err(_) => t.budget.note_degraded(),
        }
    }
    t.budget.charge_inline(bytes.len());
    ChunkPayload::Inline(bytes)
}

impl Default for ChunkedStreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// One CPU's reference stream as fixed-capacity encoded chunks.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChunkedStream {
    chunks: Vec<EncodedChunk>,
    len: usize,
    capacity: usize,
}

impl ChunkedStream {
    /// An empty stream (default capacity).
    pub fn new() -> Self {
        ChunkedStream {
            chunks: Vec::new(),
            len: 0,
            capacity: CHUNK_EVENTS,
        }
    }

    /// Encodes a materialized stream with the default capacity.
    pub fn from_stream(stream: &Stream) -> Self {
        Self::from_events(stream.events().iter().copied(), CHUNK_EVENTS)
    }

    /// Encodes events from an iterator with an explicit chunk capacity.
    pub fn from_events<I: IntoIterator<Item = Event>>(events: I, capacity: usize) -> Self {
        let mut b = ChunkedStreamBuilder::with_capacity(capacity);
        for e in events {
            b.push(e);
        }
        b.finish()
    }

    /// Total events across all chunks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the stream has no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events per full chunk. Every chunk except the last holds exactly
    /// this many events, so event `i` lives in chunk `i / capacity`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Encoded size in bytes.
    pub fn byte_len(&self) -> usize {
        self.chunks.iter().map(EncodedChunk::byte_len).sum()
    }

    /// Index of the first event of chunk `c`.
    pub fn chunk_start(&self, c: usize) -> usize {
        c * self.capacity
    }

    /// Decodes chunk `c` into `out` (cleared first).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn decode_chunk(&self, c: usize, out: &mut Vec<Event>) {
        out.clear();
        self.chunks[c].decode_into(out);
    }

    /// The encoded bytes of chunk `c`, materialized — the extraction hook
    /// spill rebuilders use to re-derive a frame from a freshly-rebuilt
    /// stream. `None` when `c` is out of range.
    pub fn chunk_bytes(&self, c: usize) -> Option<Vec<u8>> {
        self.chunks.get(c).map(EncodedChunk::encoded_bytes)
    }

    /// Number of chunks whose payload lives on disk.
    pub fn spilled_chunks(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_spilled()).count()
    }

    /// Converts resident chunks the budget refuses to keep into spilled
    /// frames of `cpu`'s segment, freeing each chunk's bytes as it lands
    /// on disk (the conversion itself is O(chunk) extra memory). A failed
    /// write degrades: the budget is flagged, the remaining chunks stay
    /// resident and are charged to it. Returns bytes spilled.
    pub fn spill_residents(
        &mut self,
        store: &Arc<SpillStore>,
        cpu: usize,
        budget: &Arc<MemBudget>,
    ) -> u64 {
        let mut spilled = 0u64;
        let mut degraded = false;
        for (idx, chunk) in self.chunks.iter_mut().enumerate() {
            let ChunkPayload::Inline(bytes) = &chunk.payload else {
                continue;
            };
            if degraded || !budget.wants_spill(bytes.len()) {
                budget.charge_inline(bytes.len());
                continue;
            }
            let t0 = Instant::now();
            match store.append_frame(cpu, idx, bytes) {
                Ok(frame) => {
                    budget.note_spilled(bytes.len(), t0.elapsed().as_nanos() as u64);
                    spilled += bytes.len() as u64;
                    chunk.payload = ChunkPayload::Spilled {
                        store: store.clone(),
                        frame,
                    };
                }
                Err(_) => {
                    budget.note_degraded();
                    budget.charge_inline(bytes.len());
                    degraded = true;
                }
            }
        }
        let _ = store.seal(cpu);
        spilled
    }

    /// An iterator over all decoded events, one chunk in memory at a time.
    pub fn iter(&self) -> ChunkEvents<'_> {
        ChunkEvents {
            stream: self,
            next_chunk: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Decodes the whole stream into a materialized [`Stream`].
    pub fn to_stream(&self) -> Stream {
        let mut events = Vec::with_capacity(self.len);
        for c in &self.chunks {
            c.decode_into(&mut events);
        }
        Stream::from_events(events)
    }
}

/// Chunk-at-a-time decoding iterator over a [`ChunkedStream`]'s events.
#[derive(Debug)]
pub struct ChunkEvents<'a> {
    stream: &'a ChunkedStream,
    next_chunk: usize,
    buf: Vec<Event>,
    pos: usize,
}

impl Iterator for ChunkEvents<'_> {
    type Item = Event;

    fn next(&mut self) -> Option<Event> {
        while self.pos >= self.buf.len() {
            if self.next_chunk >= self.stream.n_chunks() {
                return None;
            }
            self.stream.decode_chunk(self.next_chunk, &mut self.buf);
            self.next_chunk += 1;
            self.pos = 0;
        }
        let e = self.buf[self.pos];
        self.pos += 1;
        Some(e)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let done = if self.next_chunk == 0 {
            0
        } else {
            self.stream.chunk_start(self.next_chunk - 1) + self.pos
        };
        let left = self.stream.len() - done;
        (left, Some(left))
    }
}

impl<'a> IntoIterator for &'a ChunkedStream {
    type Item = Event;
    type IntoIter = ChunkEvents<'a>;

    fn into_iter(self) -> ChunkEvents<'a> {
        self.iter()
    }
}

/// A whole trace in chunked form: per-CPU [`ChunkedStream`]s plus the
/// same shared [`TraceMeta`] a materialized [`Trace`] carries.
#[derive(Clone, Debug, Default)]
pub struct ChunkedTrace {
    /// Per-CPU chunked reference streams.
    pub streams: Vec<ChunkedStream>,
    /// Code layout, kernel variables, kernel data ranges.
    pub meta: TraceMeta,
}

impl ChunkedTrace {
    /// An empty chunked trace with `n_cpus` streams.
    pub fn new(n_cpus: usize, meta: TraceMeta) -> Self {
        ChunkedTrace {
            streams: (0..n_cpus).map(|_| ChunkedStream::new()).collect(),
            meta,
        }
    }

    /// Encodes a materialized trace (default chunk capacity).
    pub fn from_trace(trace: &Trace) -> Self {
        ChunkedTrace {
            streams: trace
                .streams
                .iter()
                .map(ChunkedStream::from_stream)
                .collect(),
            meta: trace.meta.clone(),
        }
    }

    /// Decodes into a materialized [`Trace`].
    pub fn to_trace(&self) -> Trace {
        let mut t = Trace::new(self.n_cpus(), self.meta.clone());
        for (cpu, s) in self.streams.iter().enumerate() {
            t.streams[cpu] = s.to_stream();
        }
        t
    }

    /// Number of CPU streams.
    pub fn n_cpus(&self) -> usize {
        self.streams.len()
    }

    /// Total events across all streams.
    pub fn total_events(&self) -> usize {
        self.streams.iter().map(ChunkedStream::len).sum()
    }

    /// Encoded size in bytes across all streams.
    pub fn byte_len(&self) -> usize {
        self.streams.iter().map(ChunkedStream::byte_len).sum()
    }

    /// Chunks whose payload lives on disk, across all streams.
    pub fn spilled_chunks(&self) -> usize {
        self.streams.iter().map(ChunkedStream::spilled_chunks).sum()
    }

    /// [`ChunkedStream::spill_residents`] over every stream: stream `k`
    /// spills into `store`'s CPU-`k` segment. Used to push analysis
    /// intermediates (transform outputs built without a spill target)
    /// under the budget after the fact. Returns bytes spilled.
    pub fn spill_residents(&mut self, store: &Arc<SpillStore>, budget: &Arc<MemBudget>) -> u64 {
        self.streams
            .iter_mut()
            .enumerate()
            .map(|(cpu, s)| s.spill_residents(store, cpu, budget))
            .sum()
    }

    /// Checks every structural invariant [`Trace::validate`] checks,
    /// streaming chunk-by-chunk (one decode window per stream).
    pub fn validate(&self) -> Result<(), TraceError> {
        let mut v = TraceValidator::new(&self.meta, self.n_cpus())?;
        for (cpu, stream) in self.streams.iter().enumerate() {
            let mut st = v.stream_state();
            for (index, ev) in stream.iter().enumerate() {
                v.step(&mut st, cpu, index, &ev)?;
            }
            v.finish_stream(st, cpu)?;
        }
        Ok(())
    }

    /// Like [`ChunkedTrace::validate`], additionally requiring exactly
    /// `expected` CPU streams.
    pub fn validate_for_cpus(&self, expected: usize) -> Result<(), TraceError> {
        if self.n_cpus() != expected {
            return Err(TraceError::CpuCountMismatch {
                expected,
                actual: self.n_cpus(),
            });
        }
        self.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{StreamBuilder, PAGE_SIZE};

    fn all_kinds() -> Vec<Event> {
        vec![
            Event::SetMode { mode: Mode::Os },
            Event::Exec { block: BlockId(3) },
            Event::Read {
                addr: Addr(0x0100_0000),
                class: DataClass::InfreqCounter,
            },
            Event::Write {
                addr: Addr(0x0100_0004),
                class: DataClass::FreqShared,
            },
            Event::Prefetch {
                addr: Addr(0xFFFF_FFF0),
                class: DataClass::UserStack,
            },
            Event::LockAcquire {
                lock: LockId(7),
                addr: Addr(0x0100_0300),
            },
            Event::LockRelease {
                lock: LockId(7),
                addr: Addr(0x0100_0300),
            },
            Event::Barrier {
                barrier: BarrierId(2),
                addr: Addr(0x0100_0340),
                participants: 4,
            },
            Event::BlockOpBegin {
                op: BlockOp {
                    src: Addr(0x1000_0000),
                    dst: Addr(0x2000_0000),
                    len: PAGE_SIZE,
                    kind: BlockKind::Copy,
                    src_class: DataClass::PageFrame,
                    dst_class: DataClass::UserData,
                },
            },
            Event::BlockOpEnd,
            Event::BlockOpBegin {
                op: BlockOp {
                    src: Addr(0x3000_0000),
                    dst: Addr(0x3000_0000),
                    len: 64,
                    kind: BlockKind::Zero,
                    src_class: DataClass::PageFrame,
                    dst_class: DataClass::PageFrame,
                },
            },
            Event::BlockOpEnd,
            Event::SetMode { mode: Mode::User },
            Event::Idle { cycles: 0 },
            Event::Idle { cycles: u32::MAX },
            Event::Read {
                addr: Addr(0),
                class: DataClass::BarrierVar,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        for cap in [1usize, 2, 3, 7, CHUNK_EVENTS] {
            let s = ChunkedStream::from_events(all_kinds(), cap);
            assert_eq!(s.len(), all_kinds().len());
            let back: Vec<Event> = s.iter().collect();
            assert_eq!(back, all_kinds(), "capacity {cap}");
            assert_eq!(s.to_stream().events(), &all_kinds()[..]);
        }
    }

    #[test]
    fn class_byte_matches_declaration_order() {
        for (i, c) in DataClass::all().iter().enumerate() {
            assert_eq!(usize::from(class_byte(*c)), i);
            assert_eq!(byte_class(class_byte(*c)), *c);
        }
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), v);
            assert_eq!(pos, buf.len());
        }
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::from(i32::MAX),
            -i64::from(i32::MAX),
        ] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn chunk_shape_invariant_holds() {
        let events: Vec<Event> = (0..10).map(|k| Event::Idle { cycles: k }).collect();
        let s = ChunkedStream::from_events(events, 4);
        assert_eq!(s.n_chunks(), 3);
        assert_eq!(s.capacity(), 4);
        let mut buf = Vec::new();
        s.decode_chunk(0, &mut buf);
        assert_eq!(buf.len(), 4);
        s.decode_chunk(2, &mut buf);
        assert_eq!(buf.len(), 2);
        assert_eq!(s.chunk_start(2), 8);
    }

    #[test]
    fn empty_stream_is_fine() {
        let s = ChunkedStream::from_events(std::iter::empty(), 8);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert_eq!(s.n_chunks(), 0);
        assert!(s.to_stream().is_empty());
    }

    #[test]
    fn delta_state_resets_per_chunk() {
        // Two far-apart addresses straddling a chunk boundary: chunk 1
        // must decode correctly in isolation.
        let events = vec![
            Event::Read {
                addr: Addr(0xF000_0000),
                class: DataClass::UserData,
            },
            Event::Read {
                addr: Addr(0x10),
                class: DataClass::UserData,
            },
        ];
        let s = ChunkedStream::from_events(events.clone(), 1);
        let mut buf = Vec::new();
        s.decode_chunk(1, &mut buf);
        assert_eq!(buf, &events[1..]);
    }

    #[test]
    fn encoding_is_compact() {
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        for k in 0..1000u32 {
            b.read(Addr(0x0100_0000 + k * 4), DataClass::KernelOther);
        }
        b.set_mode(Mode::User);
        let s = b.finish();
        let c = ChunkedStream::from_stream(&s);
        let flat = s.len() * std::mem::size_of::<Event>();
        assert!(
            c.byte_len() * 3 < flat,
            "encoded {} vs flat {flat}",
            c.byte_len()
        );
    }

    #[test]
    fn chunked_trace_round_trips_and_validates() {
        let mut meta = TraceMeta::default();
        let site = meta.code.add_site("p", false);
        let bb = meta.code.add_block(Addr(0x100), 3, site);
        let mut t = Trace::new(2, meta);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        b.exec(bb);
        b.lock_acquire(LockId(1), Addr(0x40));
        b.read(Addr(0x0100_0000), DataClass::KernelOther);
        b.lock_release(LockId(1), Addr(0x40));
        b.set_mode(Mode::User);
        t.streams[0] = b.finish();
        let c = ChunkedTrace::from_trace(&t);
        assert_eq!(c.total_events(), t.total_events());
        assert_eq!(c.validate(), Ok(()));
        assert_eq!(c.validate_for_cpus(2), Ok(()));
        assert!(matches!(
            c.validate_for_cpus(4),
            Err(TraceError::CpuCountMismatch { .. })
        ));
        let back = c.to_trace();
        for cpu in 0..2 {
            assert_eq!(back.streams[cpu].events(), t.streams[cpu].events());
        }
    }

    fn tiny_budget() -> Arc<MemBudget> {
        // 0 MB budget: every sealed chunk wants to spill.
        MemBudget::new_mb(0)
    }

    fn test_store(label: &str, n_cpus: usize) -> Arc<SpillStore> {
        SpillStore::create(
            label,
            crate::spill::StoreIdentity {
                scale_bits: 1.0f64.to_bits(),
                seed: 1,
                n_cpus: n_cpus as u32,
            },
            n_cpus,
            None,
        )
        .expect("spill store")
    }

    #[test]
    fn spilled_stream_round_trips_identically() {
        let store = test_store("chunk-spill", 1);
        let budget = tiny_budget();
        let mut b = ChunkedStreamBuilder::with_spill(SpillTarget {
            store: store.clone(),
            cpu: 0,
            budget: budget.clone(),
        });
        // Force tiny chunks to exercise many frames.
        b.capacity = 3;
        let events: Vec<Event> = all_kinds();
        for e in &events {
            b.push(*e);
        }
        let spilled = b.finish();
        assert!(spilled.spilled_chunks() > 0, "nothing spilled");
        assert_eq!(budget.spilled_bytes(), spilled.byte_len() as u64);
        let inline = ChunkedStream::from_events(events.clone(), 3);
        assert_eq!(spilled, inline, "spilled != inline stream");
        let back: Vec<Event> = spilled.iter().collect();
        assert_eq!(back, events);
        // Random chunk access decodes through the store too.
        let mut buf = Vec::new();
        spilled.decode_chunk(1, &mut buf);
        assert_eq!(buf, &events[3..6]);
        // chunk_bytes materializes spilled frames for rebuilders.
        assert_eq!(
            spilled.chunk_bytes(1),
            inline.chunk_bytes(1),
            "extracted bytes differ"
        );
    }

    #[test]
    fn post_hoc_spill_conversion_is_transparent() {
        let events: Vec<Event> = (0..100).map(|k| Event::Idle { cycles: k + 1 }).collect();
        let inline = ChunkedStream::from_events(events.clone(), 8);
        let mut t = ChunkedTrace {
            streams: vec![inline.clone()],
            meta: TraceMeta::default(),
        };
        let store = test_store("chunk-posthoc", 1);
        let budget = tiny_budget();
        let spilled_bytes = t.spill_residents(&store, &budget);
        assert_eq!(spilled_bytes, inline.byte_len() as u64);
        assert_eq!(t.spilled_chunks(), inline.n_chunks());
        assert_eq!(t.streams[0], inline);
        let back: Vec<Event> = t.streams[0].iter().collect();
        assert_eq!(back, events);
    }

    #[test]
    fn generous_budget_keeps_chunks_resident() {
        let store = test_store("chunk-resident", 1);
        let budget = MemBudget::new_mb(64);
        let mut b = ChunkedStreamBuilder::with_spill(SpillTarget {
            store,
            cpu: 0,
            budget: budget.clone(),
        });
        for e in all_kinds() {
            b.push(e);
        }
        let s = b.finish();
        assert_eq!(s.spilled_chunks(), 0);
        assert_eq!(budget.spilled_bytes(), 0);
        assert_eq!(budget.resident_bytes(), s.byte_len() as u64);
    }

    #[test]
    fn chunked_validate_rejects_violations() {
        // A lock held at end of stream, straddling 1-event chunks.
        let t = ChunkedTrace {
            streams: vec![ChunkedStream::from_events(
                vec![Event::LockAcquire {
                    lock: LockId(3),
                    addr: Addr(0x40),
                }],
                1,
            )],
            meta: TraceMeta::default(),
        };
        assert!(matches!(
            t.validate(),
            Err(TraceError::LockHeldAtEnd { .. })
        ));
    }
}
