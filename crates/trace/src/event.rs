//! Trace events.

use crate::{Addr, BlockId, DataClass};
use std::fmt;

/// Execution mode of a processor: the paper splits all metrics into
/// operating-system and user components.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Mode {
    /// Executing application code.
    #[default]
    User,
    /// Executing kernel code (system calls, interrupts, exceptions).
    Os,
}

impl Mode {
    /// True in kernel mode.
    #[inline]
    pub fn is_os(self) -> bool {
        matches!(self, Mode::Os)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mode::User => "user",
            Mode::Os => "os",
        })
    }
}

/// Identifier of a kernel lock.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u16);

/// Identifier of a kernel barrier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierId(pub u16);

/// Kind of block operation (§4).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BlockKind {
    /// Copy `len` bytes from a source block to a destination block
    /// (fork address-space copies, `copyin`/`copyout`, buffer moves).
    Copy,
    /// Zero-fill `len` bytes (page zeroing on demand-fill).
    Zero,
}

impl fmt::Display for BlockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BlockKind::Copy => "copy",
            BlockKind::Zero => "zero",
        })
    }
}

/// Descriptor of one block operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockOp {
    /// First byte of the source block. Meaningless for [`BlockKind::Zero`]
    /// (set equal to `dst` by convention).
    pub src: Addr,
    /// First byte of the destination block.
    pub dst: Addr,
    /// Length in bytes.
    pub len: u32,
    /// Copy or zero.
    pub kind: BlockKind,
    /// Class of the source payload.
    pub src_class: DataClass,
    /// Class of the destination payload.
    pub dst_class: DataClass,
}

impl BlockOp {
    /// Whether this block moves exactly one page (the paper's size buckets:
    /// `= 4 KB`, `1 KB..4 KB`, `< 1 KB`; Table 3 rows 4–6).
    #[inline]
    pub fn is_page_sized(&self) -> bool {
        self.len == crate::PAGE_SIZE
    }
}

/// One entry of a per-CPU reference stream.
///
/// Scalar data references carry their [`DataClass`] attribution. Block
/// operations are *bracketed*: the generator emits a [`Event::BlockOpBegin`]
/// descriptor, then the individual word reads/writes of the transfer loop
/// (so cache-visible behaviour is simulated faithfully), then
/// [`Event::BlockOpEnd`]. Optimization schemes that change how block
/// operations touch the memory system (bypass, DMA, …) key off the bracket.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event {
    /// Execute every instruction of a basic block (instruction fetches are
    /// replayed against the I-cache; one cycle per instruction of base cost).
    Exec {
        /// The basic block to execute.
        block: BlockId,
    },
    /// A scalar data read of one word.
    Read {
        /// Word address.
        addr: Addr,
        /// Data-structure attribution.
        class: DataClass,
    },
    /// A scalar data write of one word.
    Write {
        /// Word address.
        addr: Addr,
        /// Data-structure attribution.
        class: DataClass,
    },
    /// A non-binding software prefetch of the line containing `addr`
    /// (inserted by the optimization passes, never by raw generators).
    Prefetch {
        /// Address whose line to prefetch.
        addr: Addr,
        /// Data-structure attribution.
        class: DataClass,
    },
    /// Acquire a kernel lock (test-and-set on `addr`; spins in simulated
    /// time until the holder releases).
    LockAcquire {
        /// Which lock.
        lock: LockId,
        /// The lock word.
        addr: Addr,
    },
    /// Release a kernel lock previously acquired by the same CPU.
    LockRelease {
        /// Which lock.
        lock: LockId,
        /// The lock word.
        addr: Addr,
    },
    /// Arrive at a barrier; blocks until `participants` CPUs have arrived.
    Barrier {
        /// Which barrier.
        barrier: BarrierId,
        /// The barrier counter/flag word.
        addr: Addr,
        /// Number of CPUs that must arrive before any proceeds.
        participants: u8,
    },
    /// Start of a block operation; the transfer's word references follow.
    BlockOpBegin {
        /// Transfer descriptor.
        op: BlockOp,
    },
    /// End of the innermost open block operation.
    BlockOpEnd,
    /// Switch between user and kernel mode.
    SetMode {
        /// New mode.
        mode: Mode,
    },
    /// The CPU idles (idle loop; no memory references) for `cycles`.
    Idle {
        /// Duration in CPU cycles.
        cycles: u32,
    },
}

impl Event {
    /// The address referenced by this event, if it is a data reference.
    pub fn data_addr(&self) -> Option<Addr> {
        match *self {
            Event::Read { addr, .. }
            | Event::Write { addr, .. }
            | Event::Prefetch { addr, .. }
            | Event::LockAcquire { addr, .. }
            | Event::LockRelease { addr, .. }
            | Event::Barrier { addr, .. } => Some(addr),
            _ => None,
        }
    }

    /// The data class of this event, if it is a data reference.
    pub fn data_class(&self) -> Option<DataClass> {
        match *self {
            Event::Read { class, .. }
            | Event::Write { class, .. }
            | Event::Prefetch { class, .. } => Some(class),
            Event::LockAcquire { .. } | Event::LockRelease { .. } => Some(DataClass::LockVar),
            Event::Barrier { .. } => Some(DataClass::BarrierVar),
            _ => None,
        }
    }

    /// True for `Read` events.
    #[inline]
    pub fn is_read(&self) -> bool {
        matches!(self, Event::Read { .. })
    }

    /// True for `Write` events.
    #[inline]
    pub fn is_write(&self) -> bool {
        matches!(self, Event::Write { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_addr_extracts_reference_addresses() {
        let r = Event::Read {
            addr: Addr(8),
            class: DataClass::PageTable,
        };
        assert_eq!(r.data_addr(), Some(Addr(8)));
        assert!(r.is_read());
        assert!(!r.is_write());
        assert_eq!(Event::Idle { cycles: 5 }.data_addr(), None);
        assert_eq!(Event::BlockOpEnd.data_addr(), None);
    }

    #[test]
    fn sync_events_have_sync_classes() {
        let l = Event::LockAcquire {
            lock: LockId(0),
            addr: Addr(64),
        };
        assert_eq!(l.data_class(), Some(DataClass::LockVar));
        let b = Event::Barrier {
            barrier: BarrierId(0),
            addr: Addr(128),
            participants: 4,
        };
        assert_eq!(b.data_class(), Some(DataClass::BarrierVar));
    }

    #[test]
    fn page_sized_predicate() {
        let op = BlockOp {
            src: Addr(0x1000),
            dst: Addr(0x2000),
            len: crate::PAGE_SIZE,
            kind: BlockKind::Copy,
            src_class: DataClass::PageFrame,
            dst_class: DataClass::PageFrame,
        };
        assert!(op.is_page_sized());
        let small = BlockOp { len: 512, ..op };
        assert!(!small.is_page_sized());
    }

    #[test]
    fn mode_display_and_predicate() {
        assert!(Mode::Os.is_os());
        assert!(!Mode::User.is_os());
        assert_eq!(Mode::Os.to_string(), "os");
        assert_eq!(BlockKind::Zero.to_string(), "zero");
    }
}
