//! Per-CPU event streams and their builder.

use crate::chunk::{ChunkedStream, ChunkedStreamBuilder};
use crate::{Addr, BarrierId, BlockId, BlockOp, DataClass, Event, LockId, Mode};

/// The ordered sequence of [`Event`]s one processor issues.
#[derive(Clone, Debug, Default)]
pub struct Stream {
    events: Vec<Event>,
}

impl Stream {
    /// Creates an empty stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an event vector. Prefer [`StreamBuilder`] for construction with
    /// bracket/mode checking.
    pub fn from_events(events: Vec<Event>) -> Self {
        Stream { events }
    }

    /// The events in issue order.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consumes the stream, returning its events (for rewriting passes).
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the stream holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scalar data reads (the unit of the paper's miss counts:
    /// "miss rates and misses refer to reads only", §3).
    pub fn read_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_read()).count()
    }

    /// Number of scalar data writes.
    pub fn write_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_write()).count()
    }
}

impl FromIterator<Event> for Stream {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        Stream {
            events: iter.into_iter().collect(),
        }
    }
}

impl Extend<Event> for Stream {
    fn extend<T: IntoIterator<Item = Event>>(&mut self, iter: T) {
        self.events.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Stream {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

/// Incremental [`Stream`] constructor that enforces structural invariants:
/// block-operation brackets balance and do not nest, lock acquire/release
/// pair up per lock, and redundant mode switches are elided.
///
/// # Example
///
/// ```
/// use oscache_trace::{Addr, BlockKind, DataClass, Mode, StreamBuilder};
///
/// let mut b = StreamBuilder::new();
/// b.set_mode(Mode::Os);
/// b.begin_block_copy(Addr(0x1000), Addr(0x2000), 64,
///                    DataClass::PageFrame, DataClass::PageFrame);
/// b.read(Addr(0x1000), DataClass::PageFrame);
/// b.write(Addr(0x2000), DataClass::PageFrame);
/// b.end_block_op();
/// let s = b.finish();
/// assert_eq!(s.read_count(), 1);
/// ```
#[derive(Debug)]
pub struct StreamBuilder {
    sink: Sink,
    mode: Mode,
    in_block_op: bool,
    held_locks: Vec<LockId>,
}

/// Where a [`StreamBuilder`] accumulates events: the historical flat
/// vector, or a chunk encoder that seals fixed-capacity chunks as they
/// fill so the builder never holds more than one chunk of decoded events.
#[derive(Debug)]
enum Sink {
    Flat(Vec<Event>),
    Chunked(ChunkedStreamBuilder),
}

impl Sink {
    fn push(&mut self, e: Event) {
        match self {
            Sink::Flat(v) => v.push(e),
            Sink::Chunked(b) => b.push(e),
        }
    }

    fn len(&self) -> usize {
        match self {
            Sink::Flat(v) => v.len(),
            Sink::Chunked(b) => b.len(),
        }
    }
}

impl Default for StreamBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamBuilder {
    /// Creates a builder; the initial mode is [`Mode::User`].
    pub fn new() -> Self {
        StreamBuilder {
            sink: Sink::Flat(Vec::new()),
            mode: Mode::default(),
            in_block_op: false,
            held_locks: Vec::new(),
        }
    }

    /// Creates a builder that encodes straight into chunks (finish with
    /// [`StreamBuilder::finish_chunked`]). Event-for-event identical to a
    /// flat build: both sinks receive the same pushes, so a chunked build
    /// decoded back equals the flat build of the same calls.
    pub fn new_chunked() -> Self {
        StreamBuilder {
            sink: Sink::Chunked(ChunkedStreamBuilder::new()),
            mode: Mode::default(),
            in_block_op: false,
            held_locks: Vec::new(),
        }
    }

    /// [`StreamBuilder::new_chunked`] with a spill target: sealed chunks
    /// the target's budget refuses to keep resident are written to its
    /// segment as the stream is built. The produced events are identical;
    /// only where the encoded bytes live differs.
    pub fn new_chunked_spilling(target: crate::spill::SpillTarget) -> Self {
        StreamBuilder {
            sink: Sink::Chunked(ChunkedStreamBuilder::with_spill(target)),
            mode: Mode::default(),
            in_block_op: false,
            held_locks: Vec::new(),
        }
    }

    /// Current execution mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.sink.len()
    }

    /// True if no events are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.sink.len() == 0
    }

    /// Appends a mode switch if `mode` differs from the current mode.
    pub fn set_mode(&mut self, mode: Mode) {
        if self.mode != mode {
            self.mode = mode;
            self.sink.push(Event::SetMode { mode });
        }
    }

    /// Appends a basic-block execution.
    pub fn exec(&mut self, block: BlockId) {
        self.sink.push(Event::Exec { block });
    }

    /// Appends a scalar read.
    pub fn read(&mut self, addr: Addr, class: DataClass) {
        self.sink.push(Event::Read { addr, class });
    }

    /// Appends a scalar write.
    pub fn write(&mut self, addr: Addr, class: DataClass) {
        self.sink.push(Event::Write { addr, class });
    }

    /// Appends a read-modify-write (e.g. a counter increment).
    pub fn rmw(&mut self, addr: Addr, class: DataClass) {
        self.read(addr, class);
        self.write(addr, class);
    }

    /// Appends a software prefetch (normally inserted by the optimization
    /// passes, but exposed for hand-built traces and tests).
    pub fn prefetch(&mut self, addr: Addr, class: DataClass) {
        self.sink.push(Event::Prefetch { addr, class });
    }

    /// Appends a lock acquisition.
    ///
    /// # Panics
    ///
    /// Panics if this CPU already holds `lock`.
    pub fn lock_acquire(&mut self, lock: LockId, addr: Addr) {
        assert!(
            !self.held_locks.contains(&lock),
            "lock {lock:?} acquired while already held"
        );
        self.held_locks.push(lock);
        self.sink.push(Event::LockAcquire { lock, addr });
    }

    /// Appends a lock release.
    ///
    /// # Panics
    ///
    /// Panics if this CPU does not hold `lock`.
    pub fn lock_release(&mut self, lock: LockId, addr: Addr) {
        let pos = self
            .held_locks
            .iter()
            .position(|&l| l == lock)
            .unwrap_or_else(|| panic!("lock {lock:?} released while not held"));
        self.held_locks.remove(pos);
        self.sink.push(Event::LockRelease { lock, addr });
    }

    /// Appends a barrier arrival.
    pub fn barrier(&mut self, barrier: BarrierId, addr: Addr, participants: u8) {
        self.sink.push(Event::Barrier {
            barrier,
            addr,
            participants,
        });
    }

    /// Opens a block-copy bracket.
    ///
    /// # Panics
    ///
    /// Panics if a block operation is already open (they do not nest).
    pub fn begin_block_copy(
        &mut self,
        src: Addr,
        dst: Addr,
        len: u32,
        src_class: DataClass,
        dst_class: DataClass,
    ) {
        self.begin_block_op(BlockOp {
            src,
            dst,
            len,
            kind: crate::BlockKind::Copy,
            src_class,
            dst_class,
        });
    }

    /// Opens a block-zero bracket.
    ///
    /// # Panics
    ///
    /// Panics if a block operation is already open.
    pub fn begin_block_zero(&mut self, dst: Addr, len: u32, dst_class: DataClass) {
        self.begin_block_op(BlockOp {
            src: dst,
            dst,
            len,
            kind: crate::BlockKind::Zero,
            src_class: dst_class,
            dst_class,
        });
    }

    /// Opens an arbitrary block-operation bracket.
    ///
    /// # Panics
    ///
    /// Panics if a block operation is already open or `op.len` is zero.
    pub fn begin_block_op(&mut self, op: BlockOp) {
        assert!(!self.in_block_op, "block operations do not nest");
        assert!(op.len > 0, "zero-length block operation");
        self.in_block_op = true;
        self.sink.push(Event::BlockOpBegin { op });
    }

    /// Closes the open block-operation bracket.
    ///
    /// # Panics
    ///
    /// Panics if no block operation is open.
    pub fn end_block_op(&mut self) {
        assert!(self.in_block_op, "no open block operation");
        self.in_block_op = false;
        self.sink.push(Event::BlockOpEnd);
    }

    /// True while inside a block-operation bracket.
    pub fn in_block_op(&self) -> bool {
        self.in_block_op
    }

    /// Appends idle time.
    pub fn idle(&mut self, cycles: u32) {
        if cycles > 0 {
            self.sink.push(Event::Idle { cycles });
        }
    }

    /// Finalizes the stream.
    ///
    /// # Panics
    ///
    /// Panics if a block operation is still open or any lock is still held.
    pub fn finish(self) -> Stream {
        self.check_finished();
        match self.sink {
            Sink::Flat(events) => Stream { events },
            // A chunked builder can still finalize flat (decode); rare, but
            // keeps the two constructors drop-in interchangeable.
            Sink::Chunked(b) => b.finish().to_stream(),
        }
    }

    /// Finalizes as a [`ChunkedStream`] (the streaming counterpart of
    /// [`StreamBuilder::finish`], same invariant checks and panics).
    pub fn finish_chunked(self) -> ChunkedStream {
        self.check_finished();
        match self.sink {
            Sink::Flat(events) => ChunkedStream::from_events(events, crate::CHUNK_EVENTS),
            Sink::Chunked(b) => b.finish(),
        }
    }

    fn check_finished(&self) {
        assert!(!self.in_block_op, "unterminated block operation");
        assert!(
            self.held_locks.is_empty(),
            "locks still held at end of stream: {:?}",
            self.held_locks
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockKind;

    #[test]
    fn builder_elides_redundant_mode_switches() {
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::User); // initial mode: no event
        b.set_mode(Mode::Os);
        b.set_mode(Mode::Os); // redundant: no event
        b.set_mode(Mode::User);
        let s = b.finish();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn rmw_is_read_then_write() {
        let mut b = StreamBuilder::new();
        b.rmw(Addr(4), DataClass::InfreqCounter);
        let s = b.finish();
        assert!(s.events()[0].is_read());
        assert!(s.events()[1].is_write());
        assert_eq!(s.read_count(), 1);
        assert_eq!(s.write_count(), 1);
    }

    #[test]
    #[should_panic(expected = "do not nest")]
    fn nested_block_ops_panic() {
        let mut b = StreamBuilder::new();
        b.begin_block_zero(Addr(0), 16, DataClass::PageFrame);
        b.begin_block_zero(Addr(64), 16, DataClass::PageFrame);
    }

    #[test]
    #[should_panic(expected = "unterminated block operation")]
    fn unterminated_block_op_panics_on_finish() {
        let mut b = StreamBuilder::new();
        b.begin_block_zero(Addr(0), 16, DataClass::PageFrame);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already held")]
    fn double_acquire_panics() {
        let mut b = StreamBuilder::new();
        b.lock_acquire(LockId(1), Addr(64));
        b.lock_acquire(LockId(1), Addr(64));
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn release_unheld_panics() {
        let mut b = StreamBuilder::new();
        b.lock_release(LockId(1), Addr(64));
    }

    #[test]
    #[should_panic(expected = "locks still held")]
    fn finish_with_held_lock_panics() {
        let mut b = StreamBuilder::new();
        b.lock_acquire(LockId(1), Addr(64));
        let _ = b.finish();
    }

    #[test]
    fn zero_block_op_sets_src_to_dst() {
        let mut b = StreamBuilder::new();
        b.begin_block_zero(Addr(0x3000), 128, DataClass::PageFrame);
        b.end_block_op();
        let s = b.finish();
        match s.events()[0] {
            Event::BlockOpBegin { op } => {
                assert_eq!(op.kind, BlockKind::Zero);
                assert_eq!(op.src, op.dst);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn chunked_builder_matches_flat_builder() {
        // A named fn, not a closure: with rustc 1.95.0 at opt-level >= 2 the
        // closure form of this helper — one closure passing StreamBuilder by
        // value, called with both Sink variants — miscompiles into a double
        // free (SIGABRT) in the release test binary. Single-call closures and
        // this named fn compile correctly; debug builds are unaffected.
        fn drive(mut b: StreamBuilder) -> StreamBuilder {
            b.set_mode(Mode::Os);
            b.lock_acquire(LockId(2), Addr(0x80));
            b.rmw(Addr(0x0100_0000), DataClass::InfreqCounter);
            b.lock_release(LockId(2), Addr(0x80));
            b.begin_block_zero(Addr(0x3000), 128, DataClass::PageFrame);
            b.write(Addr(0x3000), DataClass::PageFrame);
            b.end_block_op();
            b.idle(9);
            b.set_mode(Mode::User);
            b
        }
        let flat = drive(StreamBuilder::new()).finish();
        let chunked = drive(StreamBuilder::new_chunked()).finish_chunked();
        assert_eq!(chunked.len(), flat.len());
        let back: Vec<Event> = chunked.iter().collect();
        assert_eq!(back, flat.events());
        // Both finishers work from either sink.
        let cross = drive(StreamBuilder::new_chunked()).finish();
        assert_eq!(cross.events(), flat.events());
        let cross: Vec<Event> = drive(StreamBuilder::new())
            .finish_chunked()
            .iter()
            .collect();
        assert_eq!(cross, flat.events());
    }

    #[test]
    #[should_panic(expected = "locks still held")]
    fn finish_chunked_with_held_lock_panics() {
        let mut b = StreamBuilder::new_chunked();
        b.lock_acquire(LockId(1), Addr(64));
        let _ = b.finish_chunked();
    }

    #[test]
    fn stream_collects_from_iterator() {
        let s: Stream = vec![Event::Idle { cycles: 3 }, Event::BlockOpEnd]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 2);
        let mut s2 = Stream::new();
        s2.extend([Event::Idle { cycles: 1 }]);
        assert_eq!(s2.len(), 1);
        assert!(!s2.is_empty());
    }
}
