//! Property-based tests of the trace substrate, driven by the in-tree
//! deterministic PRNG (seeded loops replace the former proptest harness so
//! the suite stays dependency-free and reproducible).

use oscache_trace::rng::{Rng, RngCore, SmallRng};
use oscache_trace::{Addr, BlockKind, DataClass, Event, Mode, StreamBuilder, PAGE_SIZE};

const CASES: u64 = 256;

/// Line extraction is idempotent and never increases the address.
#[test]
fn line_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xA11CE);
    for _ in 0..CASES {
        let addr = rng.next_u64() as u32;
        let size = 1u32 << rng.gen_range(2..8u32);
        let a = Addr(addr);
        let l = a.line(size);
        assert!(l.0 <= a.0);
        assert!(a.0 - l.0 < size);
        assert_eq!(l.addr().line(size), l);
    }
}

/// Page number and offset decompose an address exactly.
#[test]
fn page_decomposition_roundtrips() {
    let mut rng = SmallRng::seed_from_u64(0xB0B);
    for _ in 0..CASES {
        let a = Addr(rng.next_u64() as u32);
        assert_eq!(a.page() * PAGE_SIZE + a.page_offset(), a.0);
        assert!(a.page_offset() < PAGE_SIZE);
    }
}

/// A builder-produced stream has balanced block-op brackets and no two
/// consecutive SetMode events with the same mode.
#[test]
fn builder_streams_are_well_formed() {
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    for _ in 0..CASES {
        let mut b = StreamBuilder::new();
        let mut in_block = false;
        let n_ops = rng.gen_range(0..300usize);
        for _ in 0..n_ops {
            let op = rng.gen_range(0..6u32);
            let arg = rng.gen_range(0..100_000u32);
            match op {
                0 => b.read(Addr(arg), DataClass::UserData),
                1 => b.write(Addr(arg), DataClass::UserData),
                2 => b.set_mode(Mode::Os),
                3 => b.set_mode(Mode::User),
                4 if !in_block => {
                    b.begin_block_zero(Addr(arg & !7), (arg % 512) * 8 + 8, DataClass::PageFrame);
                    in_block = true;
                }
                5 if in_block => {
                    b.end_block_op();
                    in_block = false;
                }
                _ => b.idle(arg % 100 + 1),
            }
        }
        if in_block {
            b.end_block_op();
        }
        let s = b.finish();
        // Brackets balance and never nest.
        let mut depth = 0i32;
        let mut last_mode: Option<Mode> = None;
        for e in s.events() {
            match e {
                Event::BlockOpBegin { .. } => {
                    depth += 1;
                    assert_eq!(depth, 1);
                }
                Event::BlockOpEnd => {
                    depth -= 1;
                    assert_eq!(depth, 0);
                }
                Event::SetMode { mode } => {
                    assert_ne!(Some(*mode), last_mode, "redundant mode switch");
                    last_mode = Some(*mode);
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }
}

/// Read/write counts match the events emitted.
#[test]
fn read_write_counts_are_exact() {
    let mut rng = SmallRng::seed_from_u64(0xD00D);
    for _ in 0..CASES {
        let reads = rng.gen_range(0..100usize);
        let writes = rng.gen_range(0..100usize);
        let mut b = StreamBuilder::new();
        for k in 0..reads {
            b.read(Addr(k as u32 * 4), DataClass::UserData);
        }
        for k in 0..writes {
            b.write(Addr(k as u32 * 4), DataClass::UserData);
        }
        let s = b.finish();
        assert_eq!(s.read_count(), reads);
        assert_eq!(s.write_count(), writes);
        assert_eq!(s.len(), reads + writes);
    }
}

/// Zero block ops always have `src == dst` and a positive length.
#[test]
fn zero_ops_are_well_formed() {
    let mut rng = SmallRng::seed_from_u64(0xE66);
    for _ in 0..CASES {
        let dst = rng.gen_range(0..1_000_000u32);
        let len = rng.gen_range(1..8192u32);
        let mut b = StreamBuilder::new();
        b.begin_block_zero(Addr(dst), len, DataClass::PageFrame);
        b.end_block_op();
        let s = b.finish();
        match s.events()[0] {
            Event::BlockOpBegin { op } => {
                assert_eq!(op.kind, BlockKind::Zero);
                assert_eq!(op.src, op.dst);
                assert!(op.len > 0);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }
}

/// Every builder-produced stream passes `Trace::validate`, and a
/// serialization round-trip through `write_trace`/`read_trace` (which also
/// validates) preserves it.
#[test]
fn random_builder_streams_validate_and_roundtrip() {
    use oscache_trace::{read_trace, write_trace, Trace, TraceMeta};
    let mut rng = SmallRng::seed_from_u64(0xF00F);
    for _ in 0..64 {
        let mut meta = TraceMeta::default();
        let site = meta.code.add_site("p", false);
        let bb = meta.code.add_block(Addr(0x100), 3, site);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        for _ in 0..rng.gen_range(0..200usize) {
            match rng.gen_range(0..4u32) {
                0 => b.exec(bb),
                1 => b.read(
                    Addr(rng.gen_range(0..1_000_000u32) & !3),
                    DataClass::KernelOther,
                ),
                2 => b.write(
                    Addr(rng.gen_range(0..1_000_000u32) & !3),
                    DataClass::KernelOther,
                ),
                _ => b.idle(rng.gen_range(1..50u32)),
            }
        }
        let mut t = Trace::new(1, meta);
        t.streams[0] = b.finish();
        assert_eq!(t.validate(), Ok(()));
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back.streams[0].events(), t.streams[0].events());
    }
}
