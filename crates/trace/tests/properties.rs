//! Property-based tests of the trace substrate.

use oscache_trace::{Addr, BlockKind, DataClass, Event, Mode, StreamBuilder, PAGE_SIZE};
use proptest::prelude::*;

proptest! {
    /// Line extraction is idempotent and never increases the address.
    #[test]
    fn line_is_idempotent(addr in any::<u32>(), line_log in 2u32..8) {
        let size = 1u32 << line_log;
        let a = Addr(addr);
        let l = a.line(size);
        prop_assert!(l.0 <= a.0);
        prop_assert!(a.0 - l.0 < size);
        prop_assert_eq!(l.addr().line(size), l);
    }

    /// Page number and offset decompose an address exactly.
    #[test]
    fn page_decomposition_roundtrips(addr in any::<u32>()) {
        let a = Addr(addr);
        prop_assert_eq!(a.page() * PAGE_SIZE + a.page_offset(), a.0);
        prop_assert!(a.page_offset() < PAGE_SIZE);
    }

    /// A builder-produced stream has balanced block-op brackets and at
    /// most one open mode per position (no two consecutive SetMode events
    /// with the same mode).
    #[test]
    fn builder_streams_are_well_formed(
        ops in prop::collection::vec((0u8..6, 0u32..100_000), 0..300),
    ) {
        let mut b = StreamBuilder::new();
        let mut in_block = false;
        for (op, arg) in ops {
            match op {
                0 => b.read(Addr(arg), DataClass::UserData),
                1 => b.write(Addr(arg), DataClass::UserData),
                2 => b.set_mode(Mode::Os),
                3 => b.set_mode(Mode::User),
                4 if !in_block => {
                    b.begin_block_zero(Addr(arg & !7), (arg % 512) * 8 + 8, DataClass::PageFrame);
                    in_block = true;
                }
                5 if in_block => {
                    b.end_block_op();
                    in_block = false;
                }
                _ => b.idle(arg % 100 + 1),
            }
        }
        if in_block {
            b.end_block_op();
        }
        let s = b.finish();
        // Brackets balance and never nest.
        let mut depth = 0i32;
        let mut last_mode: Option<Mode> = None;
        for e in s.events() {
            match e {
                Event::BlockOpBegin { .. } => {
                    depth += 1;
                    prop_assert_eq!(depth, 1);
                }
                Event::BlockOpEnd => {
                    depth -= 1;
                    prop_assert_eq!(depth, 0);
                }
                Event::SetMode { mode } => {
                    prop_assert_ne!(Some(*mode), last_mode, "redundant mode switch");
                    last_mode = Some(*mode);
                }
                _ => {}
            }
        }
        prop_assert_eq!(depth, 0);
    }

    /// Read/write counts match the events emitted.
    #[test]
    fn read_write_counts_are_exact(
        reads in 0usize..100,
        writes in 0usize..100,
    ) {
        let mut b = StreamBuilder::new();
        for k in 0..reads {
            b.read(Addr(k as u32 * 4), DataClass::UserData);
        }
        for k in 0..writes {
            b.write(Addr(k as u32 * 4), DataClass::UserData);
        }
        let s = b.finish();
        prop_assert_eq!(s.read_count(), reads);
        prop_assert_eq!(s.write_count(), writes);
        prop_assert_eq!(s.len(), reads + writes);
    }

    /// Zero block ops always have `src == dst` and a positive length.
    #[test]
    fn zero_ops_are_well_formed(dst in 0u32..1_000_000, len in 1u32..8192) {
        let mut b = StreamBuilder::new();
        b.begin_block_zero(Addr(dst), len, DataClass::PageFrame);
        b.end_block_op();
        let s = b.finish();
        match s.events()[0] {
            Event::BlockOpBegin { op } => {
                prop_assert_eq!(op.kind, BlockKind::Zero);
                prop_assert_eq!(op.src, op.dst);
                prop_assert!(op.len > 0);
            }
            ref other => prop_assert!(false, "unexpected {other:?}"),
        }
    }
}
