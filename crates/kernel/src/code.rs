//! Kernel code map: one routine per OS service, each made of basic blocks
//! placed in kernel text.
//!
//! Modelling instruction addresses matters twice: the simulator replays
//! instruction fetches against the 16-KB L1I (the `I Miss` component of
//! Figure 3), and the hot-spot analysis (§6) ranks *sites* — loops and
//! basic-block sequences — by the data misses suffered while they execute.
//! The routines here include the paper's named hot spots: four page-table
//! loops, the free-page list walk, and the resume / timer / trap /
//! context-switch / schedule sequences.

use oscache_trace::{Addr, BlockId, CodeLayout, SiteId, StreamBuilder};

/// A kernel routine: a site plus its basic blocks in execution order.
#[derive(Clone, Debug)]
pub struct Routine {
    /// The site id (unit of hot-spot attribution).
    pub site: SiteId,
    /// Basic blocks in straight-line order (loops have one body block).
    pub blocks: Vec<BlockId>,
}

impl Routine {
    /// Emits one straight-line execution of the routine.
    pub fn emit(&self, b: &mut StreamBuilder) {
        for &blk in &self.blocks {
            b.exec(blk);
        }
    }

    /// Emits the `k`-th block (loops emit block 0 per iteration).
    pub fn emit_block(&self, b: &mut StreamBuilder, k: usize) {
        b.exec(self.blocks[k % self.blocks.len()]);
    }
}

/// All kernel routines, with their blocks registered in a [`CodeLayout`].
#[derive(Clone, Debug)]
pub struct KernelCode {
    /// System-call trap entry sequence (§6 hot sequence).
    pub trap_entry: Routine,
    /// System-call dispatch sequence.
    pub syscall_dispatch: Routine,
    /// Process-resume sequence (§6 hot sequence).
    pub resume_proc: Routine,
    /// Context-save sequence.
    pub ctx_save: Routine,
    /// Scheduler pick-next sequence (§6 hot sequence).
    pub sched_pick: Routine,
    /// Timer-interrupt sequence (§6 hot sequence).
    pub timer_seq: Routine,
    /// System-accounting sequence (§6 hot sequence).
    pub acct_seq: Routine,
    /// Cross-processor-interrupt handler sequence.
    pub cpi_handler: Routine,
    /// `fork` entry code.
    pub fork_entry: Routine,
    /// `exec` entry code.
    pub exec_entry: Routine,
    /// Page-fault entry code.
    pub pgfault_entry: Routine,
    /// File-I/O entry code.
    pub file_io_entry: Routine,
    /// Network/tty entry code.
    pub net_entry: Routine,
    /// Generic kernel data-work sequence (argument processing, table
    /// walks) shared by all services.
    pub kwork_seq: Routine,
    /// Page-table initialization loop (§6 hot loop).
    pub pte_init_loop: Routine,
    /// Page-table copy loop (§6 hot loop).
    pub pte_copy_loop: Routine,
    /// Page-table scan loop in the fault handler (§6 hot loop).
    pub pte_scan_loop: Routine,
    /// Page-table protection-change loop (§6 hot loop).
    pub pte_prot_loop: Routine,
    /// Free-page-list walk loop (§6 hot loop).
    pub freelist_loop: Routine,
    /// Block-copy inner loop.
    pub bcopy_loop: Routine,
    /// Block-zero inner loop.
    pub bzero_loop: Routine,
    /// The idle loop.
    pub idle_loop: Routine,
    /// First byte of text past the kernel routines.
    pub text_end: Addr,
}

impl KernelCode {
    /// Registers every kernel routine in `code`, starting at `text_base`.
    pub fn new(code: &mut CodeLayout, text_base: Addr) -> Self {
        let mut cursor = text_base.0;
        let mut seq = |code: &mut CodeLayout, name: &'static str, blocks: &[u32]| -> Routine {
            let site = code.add_site(name, false);
            let mut ids = Vec::new();
            for &instrs in blocks {
                ids.push(code.add_block(Addr(cursor), instrs, site));
                cursor += instrs * 4;
            }
            cursor = (cursor + 1023) & !1023; // pad routines apart
            Routine { site, blocks: ids }
        };
        let trap_entry = seq(code, "trap_entry", &[18, 14, 20, 16]);
        let syscall_dispatch = seq(code, "syscall_dispatch", &[14, 12, 10]);
        let resume_proc = seq(code, "resume_proc", &[16, 14, 18, 12]);
        let ctx_save = seq(code, "ctx_save", &[14, 18, 14]);
        let sched_pick = seq(code, "sched_pick", &[12, 16, 14, 10]);
        let timer_seq = seq(code, "timer_seq", &[12, 14, 10]);
        let acct_seq = seq(code, "acct_seq", &[12, 10]);
        let cpi_handler = seq(code, "cpi_handler", &[10, 14]);
        let fork_entry = seq(code, "fork_entry", &[18, 16, 14, 16]);
        let exec_entry = seq(code, "exec_entry", &[16, 14, 18, 14]);
        let pgfault_entry = seq(code, "pgfault_entry", &[18, 14, 16, 14]);
        let file_io_entry = seq(code, "file_io_entry", &[14, 16, 14]);
        let net_entry = seq(code, "net_entry", &[14, 12, 14]);
        let kwork_seq = seq(code, "kwork_seq", &[12, 10, 14, 10]);

        let mut lp = |code: &mut CodeLayout, name: &'static str, instrs: u32| -> Routine {
            let site = code.add_site(name, true);
            let id = code.add_block(Addr(cursor), instrs, site);
            cursor += instrs * 4;
            cursor = (cursor + 1023) & !1023;
            Routine {
                site,
                blocks: vec![id],
            }
        };
        let pte_init_loop = lp(code, "pte_init_loop", 5);
        let pte_copy_loop = lp(code, "pte_copy_loop", 6);
        let pte_scan_loop = lp(code, "pte_scan_loop", 5);
        let pte_prot_loop = lp(code, "pte_prot_loop", 5);
        let freelist_loop = lp(code, "freelist_loop", 6);
        let bcopy_loop = lp(code, "bcopy_loop", 16);
        let bzero_loop = lp(code, "bzero_loop", 10);
        let idle_loop = lp(code, "idle_loop", 4);

        KernelCode {
            trap_entry,
            syscall_dispatch,
            resume_proc,
            ctx_save,
            sched_pick,
            timer_seq,
            acct_seq,
            cpi_handler,
            fork_entry,
            exec_entry,
            pgfault_entry,
            file_io_entry,
            net_entry,
            kwork_seq,
            pte_init_loop,
            pte_copy_loop,
            pte_scan_loop,
            pte_prot_loop,
            freelist_loop,
            bcopy_loop,
            bzero_loop,
            idle_loop,
            text_end: Addr(cursor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routines_do_not_overlap() {
        let mut code = CodeLayout::new();
        let kc = KernelCode::new(&mut code, Addr(0x0001_0000));
        let mut ranges: Vec<(u32, u32)> =
            code.blocks().map(|(_, b)| (b.start.0, b.end().0)).collect();
        ranges.sort();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "blocks overlap: {w:?}");
        }
        assert!(kc.text_end.0 > 0x0001_0000);
    }

    #[test]
    fn loops_have_one_block_and_are_flagged() {
        let mut code = CodeLayout::new();
        let kc = KernelCode::new(&mut code, Addr(0x0001_0000));
        for r in [&kc.pte_init_loop, &kc.freelist_loop, &kc.bcopy_loop] {
            assert_eq!(r.blocks.len(), 1);
            assert!(code.site(r.site).is_loop);
        }
        assert!(!code.site(kc.trap_entry.site).is_loop);
    }

    #[test]
    fn emit_pushes_exec_events() {
        let mut code = CodeLayout::new();
        let kc = KernelCode::new(&mut code, Addr(0x0001_0000));
        let mut b = StreamBuilder::new();
        kc.resume_proc.emit(&mut b);
        assert_eq!(b.len(), kc.resume_proc.blocks.len());
        kc.bcopy_loop.emit_block(&mut b, 5);
        assert_eq!(b.len(), kc.resume_proc.blocks.len() + 1);
    }

    #[test]
    fn text_footprint_exceeds_l1i() {
        // The kernel routines must not all fit the 16-KB L1I, or service
        // switches would never miss.
        let mut code = CodeLayout::new();
        let kc = KernelCode::new(&mut code, Addr(0x0001_0000));
        assert!(
            kc.text_end.0 - 0x0001_0000 > 16 * 1024,
            "kernel text suspiciously small"
        );
    }
}
