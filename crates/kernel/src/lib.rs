//! # oscache-kernel
//!
//! The synthetic multiprocessor-operating-system substrate.
//!
//! Xia & Torrellas traced Concentrix 3.0 (a multithreaded, symmetric BSD
//! 4.2 UNIX) on a 4-processor Alliant FX/8 with a hardware performance
//! monitor. Neither the machine nor the traces are obtainable today, so —
//! per the reproduction's substitution rule (DESIGN.md §2) — this crate
//! models the *reference behaviour* of such a kernel:
//!
//! * [`KernelLayout`] places every kernel data structure the paper names
//!   (event counters, `freelist`, `cpievents`, resource-table pointers,
//!   locks, barriers, timer, run queue, process table, page tables, buffer
//!   cache, page frames) at fixed physical addresses — reproducing the
//!   sharing pathologies of a uniprocessor-derived kernel: counters packed
//!   per line, sync variables sharing lines, falsely-shared per-CPU fields.
//! * [`KernelCode`] places every OS routine's basic blocks in kernel text,
//!   including the paper's §6 hot spots (four page-table loops, the
//!   free-list walk, and the resume/timer/trap/switch/schedule sequences).
//! * [`Kernel`] generates the reference stream of each OS service
//!   (page faults, fork/exec, context switches, cross-processor
//!   interrupts, timer ticks, file I/O, the pager sweep) into per-CPU
//!   [`oscache_trace::StreamBuilder`]s.
//!
//! The `oscache-workloads` crate composes these services into the paper's
//! four workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod layout;
mod services;

pub use code::{KernelCode, Routine};
pub use layout::{
    KernelLayout, KernelLock, N_BARRIERS, N_BUFFERS, N_COUNTERS, N_CPUS, N_FRAMES, N_LOCKS,
    N_PROCS, N_RESOURCES, PROC_ENTRY_SIZE, PTES_PER_PROC,
};
pub use services::{Fill, Kernel, BLOCK_WORD};
