//! Physical placement of kernel data structures.
//!
//! The traced machine maps kernel virtual addresses one-to-one to physical
//! addresses (§2.2), so a single flat layout describes the kernel. The
//! layout deliberately reproduces the sharing pathologies the paper
//! observes in Concentrix: event counters packed together in cache lines
//! (privatization targets, §5.1), synchronization variables sharing lines
//! with each other (relocation targets), and per-CPU scheduling fields
//! falsely shared in common lines (the "Other" coherence category of
//! Table 5).

use oscache_trace::{Addr, DataClass, KernelVar, VarRole, PAGE_SIZE};

/// Number of processors the kernel is laid out for.
pub const N_CPUS: usize = 4;

/// Number of `vmmeter`-style event counters.
pub const N_COUNTERS: usize = 16;

/// Number of kernel spin locks.
pub const N_LOCKS: usize = 12;

/// Number of gang-scheduling barriers.
pub const N_BARRIERS: usize = 4;

/// Number of system-resource-table pointers (frequently shared).
pub const N_RESOURCES: usize = 16;

/// Number of process-table entries.
pub const N_PROCS: usize = 64;

/// Bytes per process-table entry.
pub const PROC_ENTRY_SIZE: u32 = 512;

/// Number of page-table entries per process (4-MB address space).
pub const PTES_PER_PROC: u32 = 1024;

/// Number of file-system buffer-cache buffers.
pub const N_BUFFERS: u32 = 256;

/// Number of physical page frames available to the page allocator.
pub const N_FRAMES: u32 = 4096;

/// Well-known kernel locks, in activity order.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelLock {
    /// Physical-memory (free-list) allocation lock.
    Freemem = 0,
    /// Job-scheduling (run-queue) lock.
    Sched = 1,
    /// High-resolution-timer lock.
    Timer = 2,
    /// Accounting lock.
    Accounting = 3,
    /// Buffer-cache lock.
    BufCache = 4,
    /// Process-table lock.
    ProcTable = 5,
    /// Callout-table lock.
    Callout = 6,
    /// VM-map lock.
    VmMap = 7,
    /// TTY subsystem lock.
    Tty = 8,
    /// Network-interface lock.
    Net = 9,
    /// File-table lock.
    FileTable = 10,
    /// Inode-cache lock.
    Inode = 11,
}

/// The kernel's physical memory map.
#[derive(Clone, Debug)]
pub struct KernelLayout {
    /// Number of processors the kernel is configured for.
    pub n_cpus: usize,
    /// Start of kernel text.
    pub text_base: Addr,
    /// Start of the kernel static-data area.
    pub static_base: Addr,
    /// Start of the process table.
    pub proc_table: Addr,
    /// Start of the per-process page-table arrays.
    pub page_tables: Addr,
    /// Start of the per-CPU kernel stacks.
    pub kstacks: Addr,
    /// Start of the run-queue node pool.
    pub runq_nodes: Addr,
    /// Start of the buffer cache.
    pub buffer_cache: Addr,
    /// Start of the physical page-frame pool.
    pub page_frames: Addr,
    /// Base of per-process user address spaces.
    pub user_base: Addr,
    /// Statically-allocated kernel variables (optimization candidates).
    pub vars: Vec<KernelVar>,
}

impl KernelLayout {
    /// Builds the standard 4-CPU layout (the paper's machine).
    pub fn new() -> Self {
        Self::for_cpus(N_CPUS)
    }

    /// Builds a layout for `n_cpus` processors (2–8; the scalability
    /// extension sweeps this).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_cpus <= 8`.
    pub fn for_cpus(n_cpus: usize) -> Self {
        assert!((1..=8).contains(&n_cpus), "supported CPU counts are 1..=8");
        let static_base = Addr(0x0100_0000);
        let mut vars = Vec::new();

        // vmmeter event counters: 4-byte counters packed 4 per 16-byte
        // line — the uniprocessor heritage the paper calls out (§5.1).
        let counter_names = [
            "vmmeter.v_intr",
            "vmmeter.v_swtch",
            "vmmeter.v_trap",
            "vmmeter.v_syscall",
            "vmmeter.v_pgfault",
            "vmmeter.v_pgzero",
            "vmmeter.v_pgcopy",
            "vmmeter.v_fork",
            "vmmeter.v_exec",
            "vmmeter.v_read",
            "vmmeter.v_write",
            "vmmeter.v_iowait",
            "vmmeter.v_sched",
            "vmmeter.v_tick",
            "vmmeter.v_softint",
            "vmmeter.v_pageout",
        ];
        for (k, name) in counter_names.iter().enumerate() {
            vars.push(KernelVar {
                name: (*name).to_string(),
                addr: static_base.offset(k as u32 * 4),
                size: 4,
                class: DataClass::InfreqCounter,
                role: VarRole::Counter,
                false_shared_group: Some((k / 4) as u16),
            });
        }

        // freelist bookkeeping (producer-consumer: §5.2 update candidate).
        vars.push(KernelVar {
            name: "freelist.size".to_string(),
            addr: static_base.offset(0x100),
            size: 4,
            class: DataClass::Freelist,
            role: VarRole::FreqShared {
                producer_consumer: true,
            },
            false_shared_group: None,
        });
        vars.push(KernelVar {
            name: "freelist.head".to_string(),
            addr: static_base.offset(0x104),
            size: 4,
            class: DataClass::Freelist,
            role: VarRole::FreqShared {
                producer_consumer: true,
            },
            false_shared_group: None,
        });

        // cpievents: cross-processor-interrupt descriptors (§5.2 example).
        for cpu in 0..n_cpus {
            vars.push(KernelVar {
                name: format!("cpievents[{cpu}]"),
                addr: static_base.offset(0x140 + cpu as u32 * 8),
                size: 8,
                class: DataClass::CpiEvents,
                role: VarRole::FreqShared {
                    producer_consumer: true,
                },
                false_shared_group: None,
            });
        }

        // System-resource-table process pointers (§5's freq-shared class).
        for r in 0..N_RESOURCES {
            vars.push(KernelVar {
                name: format!("resource[{r}].proc"),
                addr: static_base.offset(0x180 + r as u32 * 4),
                size: 4,
                class: DataClass::FreqShared,
                role: VarRole::FreqShared {
                    producer_consumer: r % 2 == 0,
                },
                false_shared_group: None,
            });
        }

        // Kernel locks, packed four per line (relocation separates them).
        let lock_names = [
            "lock.freemem",
            "lock.sched",
            "lock.timer",
            "lock.accounting",
            "lock.bufcache",
            "lock.proctable",
            "lock.callout",
            "lock.vmmap",
            "lock.tty",
            "lock.net",
            "lock.filetable",
            "lock.inode",
        ];
        for (k, name) in lock_names.iter().enumerate() {
            vars.push(KernelVar {
                name: (*name).to_string(),
                addr: static_base.offset(0x300 + k as u32 * 4),
                size: 4,
                class: DataClass::LockVar,
                role: VarRole::Lock,
                false_shared_group: Some((0x30 + k / 4) as u16),
            });
        }

        // Gang-scheduling barriers (48 bytes total, §5.2).
        for k in 0..N_BARRIERS {
            vars.push(KernelVar {
                name: format!("gang_barrier[{k}]"),
                addr: static_base.offset(0x340 + k as u32 * 12),
                size: 12,
                class: DataClass::BarrierVar,
                role: VarRole::Barrier,
                false_shared_group: None,
            });
        }

        // High-resolution timer / accounting structure (§6 hot data).
        vars.push(KernelVar {
            name: "hrtimer".to_string(),
            addr: static_base.offset(0x400),
            size: 64,
            class: DataClass::TimerStruct,
            role: VarRole::Plain,
            false_shared_group: None,
        });

        // Per-CPU scheduler fields falsely shared in a few lines ("Other"
        // coherence misses, Table 5).
        for cpu in 0..n_cpus {
            vars.push(KernelVar {
                name: format!("cpu_sched_info[{cpu}]"),
                addr: static_base.offset(0x500 + cpu as u32 * 8),
                size: 8,
                class: DataClass::KernelOther,
                role: VarRole::Plain,
                false_shared_group: Some((0x50 + cpu / 2) as u16),
            });
        }

        // Run-queue header.
        vars.push(KernelVar {
            name: "runq.head".to_string(),
            addr: static_base.offset(0x600),
            size: 16,
            class: DataClass::RunQueue,
            role: VarRole::FreqShared {
                producer_consumer: false,
            },
            false_shared_group: None,
        });

        // System-call dispatch table (read-only; §6 prefetchable).
        vars.push(KernelVar {
            name: "syscall_table".to_string(),
            addr: static_base.offset(0x800),
            size: 256 * 4,
            class: DataClass::SyscallTable,
            role: VarRole::Plain,
            false_shared_group: None,
        });

        // Region bases are staggered modulo the 32-KB direct-mapped L1D so
        // that structures do not all collide in the same frames — on a
        // real machine the physical placement of independently-allocated
        // regions is effectively arbitrary, and the paper finds conflicts
        // are "random", not concentrated between structure pairs (§6).
        KernelLayout {
            n_cpus,
            text_base: Addr(0x0001_0000),
            static_base,
            proc_table: Addr(0x0101_0c00),
            page_tables: Addr(0x0110_2400),
            kstacks: Addr(0x0104_5800),
            runq_nodes: Addr(0x0102_3000),
            buffer_cache: Addr(0x0200_1c00),
            page_frames: Addr(0x1000_0000),
            user_base: Addr(0x4000_0000),
            vars,
        }
    }

    /// Address of a named static variable.
    ///
    /// # Panics
    ///
    /// Panics if no variable has that name.
    pub fn var_addr(&self, name: &str) -> Addr {
        self.vars
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("unknown kernel variable {name}"))
            .addr
    }

    /// Address of one of the well-known locks.
    pub fn lock_addr(&self, lock: KernelLock) -> Addr {
        self.static_base.offset(0x300 + lock as u32 * 4)
    }

    /// Address of `freelist.size`.
    pub fn freelist_size_addr(&self) -> Addr {
        self.static_base.offset(0x100)
    }

    /// Address of `freelist.head`.
    pub fn freelist_head_addr(&self) -> Addr {
        self.static_base.offset(0x104)
    }

    /// Address of `cpievents[cpu]`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= N_CPUS`.
    pub fn cpievents_addr(&self, cpu: usize) -> Addr {
        assert!(cpu < self.n_cpus);
        self.static_base.offset(0x140 + cpu as u32 * 8)
    }

    /// Address of `resource[r].proc`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= N_RESOURCES`.
    pub fn resource_addr(&self, r: usize) -> Addr {
        assert!(r < N_RESOURCES);
        self.static_base.offset(0x180 + r as u32 * 4)
    }

    /// Address of the falsely-shared `cpu_sched_info[cpu]`.
    ///
    /// # Panics
    ///
    /// Panics if `cpu >= N_CPUS`.
    pub fn sched_info_addr(&self, cpu: usize) -> Addr {
        assert!(cpu < self.n_cpus);
        self.static_base.offset(0x500 + cpu as u32 * 8)
    }

    /// Address of `runq.head`.
    pub fn runq_head_addr(&self) -> Addr {
        self.static_base.offset(0x600)
    }

    /// Address of the high-resolution timer structure.
    pub fn hrtimer_addr(&self) -> Addr {
        self.static_base.offset(0x400)
    }

    /// Address of the system-call dispatch table.
    pub fn syscall_table_addr(&self) -> Addr {
        self.static_base.offset(0x800)
    }

    /// Address of a gang barrier.
    ///
    /// # Panics
    ///
    /// Panics if `k >= N_BARRIERS`.
    pub fn barrier_addr(&self, k: usize) -> Addr {
        assert!(k < N_BARRIERS);
        self.static_base.offset(0x340 + k as u32 * 12)
    }

    /// Address of one event counter.
    ///
    /// # Panics
    ///
    /// Panics if `k >= N_COUNTERS`.
    pub fn counter_addr(&self, k: usize) -> Addr {
        assert!(k < N_COUNTERS);
        self.static_base.offset(k as u32 * 4)
    }

    /// Address of a process-table entry.
    pub fn proc_addr(&self, pid: u32) -> Addr {
        self.proc_table
            .offset((pid % N_PROCS as u32) * PROC_ENTRY_SIZE)
    }

    /// Address of a page-table entry of a process.
    pub fn pte_addr(&self, pid: u32, pte: u32) -> Addr {
        self.page_tables
            .offset((pid % N_PROCS as u32) * PTES_PER_PROC * 4 + (pte % PTES_PER_PROC) * 4)
    }

    /// Address of physical page frame `n`.
    pub fn frame_addr(&self, n: u32) -> Addr {
        self.page_frames.offset((n % N_FRAMES) * PAGE_SIZE)
    }

    /// Address of buffer-cache buffer `n`.
    pub fn buffer_addr(&self, n: u32) -> Addr {
        self.buffer_cache.offset((n % N_BUFFERS) * PAGE_SIZE)
    }

    /// Base of the kernel stack of one CPU.
    pub fn kstack_addr(&self, cpu: usize) -> Addr {
        self.kstacks.offset(cpu as u32 * PAGE_SIZE)
    }

    /// Base of one CPU's kernel working area (u-area, pv lists, per-CPU
    /// caches): the bulk of kernel data work happens here and stays
    /// cache-resident, which is what keeps the OS miss *rate* at a few
    /// percent even though the OS issues 40–61% of all data reads
    /// (Table 1).
    pub fn scratch_addr(&self, cpu: usize) -> Addr {
        self.kstacks.offset((8 + 2 * cpu as u32) * PAGE_SIZE)
    }

    /// Base of process `pid`'s user data segment. Bases are staggered
    /// modulo the L1D size so different processes' hot regions do not all
    /// map to the same frames.
    pub fn user_data(&self, pid: u32) -> Addr {
        let seg = pid.wrapping_mul(0x0100_0000) & 0x3fff_ffff;
        self.user_base.offset(seg + (pid % 7) * 0x1200)
    }
}

impl Default for KernelLayout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_vars_resolve() {
        let l = KernelLayout::new();
        assert_eq!(l.var_addr("vmmeter.v_intr"), l.counter_addr(0));
        assert_eq!(l.var_addr("freelist.size"), l.static_base.offset(0x100));
        assert_eq!(l.var_addr("lock.sched"), l.lock_addr(KernelLock::Sched));
    }

    #[test]
    #[should_panic(expected = "unknown kernel variable")]
    fn unknown_var_panics() {
        KernelLayout::new().var_addr("no_such_thing");
    }

    #[test]
    fn counters_are_packed_four_per_line() {
        let l = KernelLayout::new();
        // counters 0..3 share a 16-byte line; 4 starts the next.
        assert_eq!(l.counter_addr(0).line(16), l.counter_addr(3).line(16));
        assert_ne!(l.counter_addr(3).line(16), l.counter_addr(4).line(16));
    }

    #[test]
    fn locks_share_lines_in_base_layout() {
        let l = KernelLayout::new();
        assert_eq!(
            l.lock_addr(KernelLock::Freemem).line(16),
            l.lock_addr(KernelLock::Accounting).line(16)
        );
    }

    #[test]
    fn table_addressing_is_bounded() {
        let l = KernelLayout::new();
        assert_eq!(l.proc_addr(0), l.proc_table);
        assert_eq!(l.proc_addr(64), l.proc_table); // wraps
        assert_eq!(l.pte_addr(1, 0), l.page_tables.offset(1024 * 4));
        assert_eq!(l.frame_addr(1), l.page_frames.offset(4096));
        assert_eq!(l.buffer_addr(2), l.buffer_cache.offset(8192));
    }

    #[test]
    fn distinct_regions_do_not_overlap() {
        let l = KernelLayout::new();
        let regions = [
            (l.text_base.0, 0x0008_0000),
            (l.static_base.0, 0x1000),
            (l.proc_table.0, N_PROCS as u32 * PROC_ENTRY_SIZE),
            (l.page_tables.0, N_PROCS as u32 * PTES_PER_PROC * 4),
            (l.buffer_cache.0, N_BUFFERS * PAGE_SIZE),
            (l.page_frames.0, N_FRAMES * PAGE_SIZE),
        ];
        for (i, &(a, alen)) in regions.iter().enumerate() {
            for &(b, blen) in &regions[i + 1..] {
                assert!(a + alen <= b || b + blen <= a, "regions overlap");
            }
        }
    }

    #[test]
    fn every_var_lies_in_the_static_page_range() {
        let l = KernelLayout::new();
        for v in &l.vars {
            assert!(v.addr.0 >= l.static_base.0);
            assert!(v.addr.0 + v.size <= l.static_base.0 + 4 * PAGE_SIZE);
        }
    }
}
