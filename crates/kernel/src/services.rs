//! OS service generators: each emits the reference stream of one kernel
//! activity into a per-CPU [`StreamBuilder`].
//!
//! The services cover the activities the paper's workloads exercise (§2.3):
//! page-fault handling, process scheduling and gang scheduling,
//! cross-processor interrupts, fork/exec (block copies and zeroes), system
//! calls, timer/accounting, and file I/O — each touching the kernel data
//! structures of [`crate::KernelLayout`] with the access patterns the paper
//! attributes to them.

use crate::{KernelCode, KernelLayout, KernelLock};
use oscache_trace::rng::Rng;
use oscache_trace::{Addr, DataClass, LockId, StreamBuilder, WORD_SIZE};

/// Word stride (bytes) used by block-operation transfer loops: the machine
/// moves 8 bytes per load/store pair (double-word moves).
pub const BLOCK_WORD: u32 = 8;

/// How a page fault obtains its page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fill {
    /// Demand-zero: the frame is block-zeroed.
    Zero,
    /// Page-in: the frame is block-copied from a buffer-cache buffer.
    From(Addr),
    /// The page was already resident (soft fault): no block operation.
    Soft,
}

/// The synthetic kernel: layout plus code, with one generator method per
/// service.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// Data-structure placement.
    pub layout: KernelLayout,
    /// Code placement.
    pub code: KernelCode,
    /// Multiplier on the bulk data work of each service — workloads differ
    /// in how heavyweight their dominant kernel paths are.
    pub work_scale: f64,
    /// Probability that a system call chases cold, scattered kernel
    /// structures (inode cache, tty state, other processes' entries) —
    /// high for workloads executing "a variety of system calls" (§2.3's
    /// Shell), low for compute workloads.
    pub misc_lookup: f64,
}

impl Kernel {
    /// Builds the kernel, registering its code in `code`.
    pub fn new(code: &mut oscache_trace::CodeLayout) -> Self {
        Self::for_cpus(code, crate::N_CPUS)
    }

    /// Builds a kernel configured for `n_cpus` processors.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n_cpus <= 8` (see [`KernelLayout::for_cpus`]).
    pub fn for_cpus(code: &mut oscache_trace::CodeLayout, n_cpus: usize) -> Self {
        let layout = KernelLayout::for_cpus(n_cpus);
        let kcode = KernelCode::new(code, layout.text_base);
        Kernel {
            layout,
            code: kcode,
            work_scale: 1.0,
            misc_lookup: 0.3,
        }
    }

    /// [`LockId`] of a well-known kernel lock.
    pub fn lock_id(&self, lock: KernelLock) -> LockId {
        LockId(lock as u16)
    }

    // ---- small helpers ---------------------------------------------------

    /// A few reads/writes on this CPU's kernel stack.
    fn kstack_touch(&self, b: &mut StreamBuilder, cpu: usize, reads: u32, writes: u32) {
        let base = self.layout.kstack_addr(cpu);
        for k in 0..reads {
            b.read(base.offset((k % 64) * WORD_SIZE), DataClass::KernelStack);
        }
        for k in 0..writes {
            b.write(base.offset((k % 64) * WORD_SIZE), DataClass::KernelStack);
        }
    }

    /// Bulk kernel data work on this CPU's resident working area: the
    /// register-save areas, argument structures, pv lists, and lookup
    /// tables that real kernel paths walk. These references mostly hit.
    fn kernel_work(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        reads: u32,
        writes: u32,
    ) {
        let reads = (f64::from(reads) * self.work_scale).round() as u32;
        let writes = (f64::from(writes) * self.work_scale).round() as u32;
        let base = self.layout.scratch_addr(cpu);
        // Skewed reuse: most of the work lands on the hottest KB (current
        // frames and arguments), the rest across the full working area.
        let pick = |rng: &mut dyn oscache_trace::rng::RngCore| {
            if rng.gen_bool(0.8) {
                rng.gen_range(0..256u32) * 4
            } else {
                rng.gen_range(0..1024u32) * 4
            }
        };
        let total = reads + writes;
        let mut emitted = 0u32;
        let mut w = 0u32;
        let mut r = 0u32;
        let mut k = 0usize;
        while r + w < total {
            // Interleave instruction work with the data references.
            if emitted.is_multiple_of(6) {
                self.code.kwork_seq.emit_block(b, k);
                k += 1;
            }
            if r < reads && (w >= writes || (r + w) % 4 != 3) {
                b.read(base.offset(pick(rng)), DataClass::KernelOther);
                r += 1;
            } else {
                b.write(base.offset(pick(rng)), DataClass::KernelOther);
                w += 1;
            }
            emitted += 1;
        }
    }

    /// Increment one of the `vmmeter` event counters.
    pub fn bump_counter(&self, b: &mut StreamBuilder, counter: usize) {
        b.rmw(self.layout.counter_addr(counter), DataClass::InfreqCounter);
    }

    /// Read all event counters (the pager's periodic aggregate use, §5.1).
    pub fn read_all_counters(&self, b: &mut StreamBuilder) {
        for k in 0..crate::N_COUNTERS {
            b.read(self.layout.counter_addr(k), DataClass::InfreqCounter);
        }
    }

    /// Picks a buffer-cache buffer: file access has strong temporal
    /// locality, so most hits land in a small hot set.
    fn pick_buffer(&self, rng: &mut impl Rng) -> u32 {
        if rng.gen_bool(0.8) {
            rng.gen_range(0..3u32)
        } else {
            rng.gen_range(0..crate::N_BUFFERS)
        }
    }

    // ---- block operations -------------------------------------------------

    /// Emits a bracketed block copy with its transfer loop.
    pub fn block_copy(
        &self,
        b: &mut StreamBuilder,
        src: Addr,
        dst: Addr,
        len: u32,
        src_class: DataClass,
        dst_class: DataClass,
    ) {
        b.begin_block_copy(src, dst, len, src_class, dst_class);
        let mut off = 0;
        while off < len {
            self.code.bcopy_loop.emit_block(b, 0);
            let chunk = (len - off).min(32);
            let mut w = 0;
            while w < chunk {
                b.read(src.offset(off + w), src_class);
                b.write(dst.offset(off + w), dst_class);
                w += BLOCK_WORD;
            }
            off += chunk;
        }
        b.end_block_op();
    }

    /// Emits a bracketed block zero (page zeroing) with its store loop.
    pub fn block_zero(&self, b: &mut StreamBuilder, dst: Addr, len: u32, dst_class: DataClass) {
        b.begin_block_zero(dst, len, dst_class);
        let mut off = 0;
        while off < len {
            self.code.bzero_loop.emit_block(b, 0);
            let chunk = (len - off).min(32);
            let mut w = 0;
            while w < chunk {
                b.write(dst.offset(off + w), dst_class);
                w += BLOCK_WORD;
            }
            off += chunk;
        }
        b.end_block_op();
    }

    // ---- services ----------------------------------------------------------

    /// System-call entry: trap sequence, current-process and
    /// file-descriptor-table accesses, dispatch-table read, kernel-stack
    /// frame setup. The caller emits the service body afterwards.
    pub fn syscall_entry(&self, b: &mut StreamBuilder, rng: &mut impl Rng, cpu: usize, pid: u32) {
        self.code.trap_entry.emit(b);
        self.kstack_touch(b, cpu, 6, 6);
        // Current process state: u-area reads and a few writes.
        let proc = self.layout.proc_addr(pid);
        for k in 0..6u32 {
            b.read(proc.offset(k * WORD_SIZE), DataClass::ProcTable);
        }
        b.write(proc.offset(6 * WORD_SIZE), DataClass::ProcTable);
        // Most calls hit a handful of hot system-call numbers.
        let sysno = if rng.gen_bool(0.85) {
            rng.gen_range(0..16u32)
        } else {
            rng.gen_range(16..256u32)
        };
        b.read(
            self.layout.syscall_table_addr().offset(sysno * 4),
            DataClass::SyscallTable,
        );
        self.code.syscall_dispatch.emit(b);
        // Argument fetch and descriptor-table lookups.
        for k in 0..4u32 {
            b.read(proc.offset(128 + k * WORD_SIZE), DataClass::ProcTable);
        }
        // Some calls chase cold structures (inode cache, tty, other
        // processes' entries) — diffuse conflict misses (§6).
        if rng.gen_bool(self.misc_lookup) {
            for _ in 0..8 {
                let p = rng.gen_range(0..crate::N_PROCS as u32);
                b.read(
                    self.layout
                        .proc_addr(p)
                        .offset(rng.gen_range(0..32u32) * 16),
                    DataClass::ProcTable,
                );
            }
        }
        // The service body's data work.
        self.kernel_work(b, rng, cpu, 300, 100);
        b.rmw(self.layout.counter_addr(3), DataClass::InfreqCounter); // v_syscall
    }

    /// Page-fault handling: PTE scan of the faulting region (sequential —
    /// faults walk a process's address space), free-list allocation under
    /// the `freemem` lock, PTE update, counter bumps, and the fill
    /// operation. `pte_base` is the caller's per-process fault cursor.
    #[allow(clippy::too_many_arguments)]
    pub fn page_fault(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        pid: u32,
        pte_base: u32,
        frame: u32,
        fill: Fill,
    ) {
        self.code.pgfault_entry.emit(b);
        self.kstack_touch(b, cpu, 4, 4);
        // Proc/vm-map state of the faulting process.
        let proc = self.layout.proc_addr(pid);
        for k in 0..4u32 {
            b.read(proc.offset(64 + k * WORD_SIZE), DataClass::ProcTable);
        }
        // Scan the faulting region's PTEs, sequentially.
        let base = pte_base % (crate::PTES_PER_PROC - 16);
        for k in 0..rng.gen_range(4..10u32) {
            self.code.pte_scan_loop.emit_block(b, 0);
            b.read(self.layout.pte_addr(pid, base + k), DataClass::PageTable);
        }
        // Allocate a frame from the free list (the list's next nodes are
        // the next frames to be handed out).
        let lid = self.lock_id(KernelLock::Freemem);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::Freemem));
        b.read(self.layout.freelist_head_addr(), DataClass::Freelist);
        for k in 0..rng.gen_range(1..3u32) {
            self.code.freelist_loop.emit_block(b, 0);
            b.read(self.layout.frame_addr(frame + k), DataClass::KernelOther);
        }
        b.rmw(self.layout.freelist_size_addr(), DataClass::Freelist);
        b.write(self.layout.freelist_head_addr(), DataClass::Freelist);
        b.lock_release(lid, self.layout.lock_addr(KernelLock::Freemem));
        // Install the mapping and maintain the vm bookkeeping.
        b.write(self.layout.pte_addr(pid, base), DataClass::PageTable);
        self.kernel_work(b, rng, cpu, 450, 150);
        b.rmw(self.layout.counter_addr(4), DataClass::InfreqCounter); // v_pgfault
        match fill {
            Fill::Zero => {
                self.block_zero(
                    b,
                    self.layout.frame_addr(frame),
                    oscache_trace::PAGE_SIZE,
                    DataClass::PageFrame,
                );
                b.rmw(self.layout.counter_addr(5), DataClass::InfreqCounter); // v_pgzero
            }
            Fill::From(src) => {
                self.block_copy(
                    b,
                    src,
                    self.layout.frame_addr(frame),
                    oscache_trace::PAGE_SIZE,
                    DataClass::BufferCache,
                    DataClass::PageFrame,
                );
            }
            Fill::Soft => {}
        }
    }

    /// `fork`: process-table copy under the proc-table lock, PTE copy loop,
    /// then page-sized block copies of `pages` address-space pages.
    ///
    /// `src_frames[k]` is copied to `dst_frames[k]`; chaining fork-to-fork
    /// (child frames becoming the next fork's source) reproduces the §4.1.3
    /// pattern where "the destination block of a first block operation is
    /// often the source block of a second".
    #[allow(clippy::too_many_arguments)]
    pub fn fork(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        parent: u32,
        child: u32,
        src_frames: &[u32],
        dst_frames: &[u32],
    ) {
        assert_eq!(src_frames.len(), dst_frames.len());
        self.code.fork_entry.emit(b);
        self.kstack_touch(b, cpu, 3, 5);
        let lid = self.lock_id(KernelLock::ProcTable);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::ProcTable));
        for k in 0..10u32 {
            b.read(
                self.layout.proc_addr(parent).offset(k * WORD_SIZE),
                DataClass::ProcTable,
            );
            b.write(
                self.layout.proc_addr(child).offset(k * WORD_SIZE),
                DataClass::ProcTable,
            );
        }
        b.lock_release(lid, self.layout.lock_addr(KernelLock::ProcTable));
        // Copy the page tables.
        let n_ptes = rng.gen_range(24..64u32);
        for k in 0..n_ptes {
            self.code.pte_copy_loop.emit_block(b, 0);
            b.read(self.layout.pte_addr(parent, k), DataClass::PageTable);
            b.write(self.layout.pte_addr(child, k), DataClass::PageTable);
        }
        // Copy the writable pages.
        for (s, d) in src_frames.iter().zip(dst_frames) {
            self.block_copy(
                b,
                self.layout.frame_addr(*s),
                self.layout.frame_addr(*d),
                oscache_trace::PAGE_SIZE,
                DataClass::PageFrame,
                DataClass::PageFrame,
            );
        }
        self.kernel_work(b, rng, cpu, 500, 170);
        b.rmw(self.layout.counter_addr(7), DataClass::InfreqCounter); // v_fork
    }

    /// `fork` that copies `npages` of the parent's user address space
    /// (starting at its data segment — the pages user code actually
    /// touches) into the child's address space.
    #[allow(clippy::too_many_arguments)]
    pub fn fork_pages(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        parent: u32,
        child: u32,
        parent_base: Addr,
        child_base: Addr,
        npages: u32,
    ) {
        self.code.fork_entry.emit(b);
        self.kstack_touch(b, cpu, 3, 5);
        let lid = self.lock_id(KernelLock::ProcTable);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::ProcTable));
        for k in 0..10u32 {
            b.read(
                self.layout.proc_addr(parent).offset(k * WORD_SIZE),
                DataClass::ProcTable,
            );
            b.write(
                self.layout.proc_addr(child).offset(k * WORD_SIZE),
                DataClass::ProcTable,
            );
        }
        b.lock_release(lid, self.layout.lock_addr(KernelLock::ProcTable));
        let n_ptes = rng.gen_range(24..64u32);
        for k in 0..n_ptes {
            self.code.pte_copy_loop.emit_block(b, 0);
            b.read(self.layout.pte_addr(parent, k), DataClass::PageTable);
            b.write(self.layout.pte_addr(child, k), DataClass::PageTable);
        }
        for p in 0..npages {
            self.block_copy(
                b,
                parent_base.offset(p * oscache_trace::PAGE_SIZE),
                child_base.offset(p * oscache_trace::PAGE_SIZE),
                oscache_trace::PAGE_SIZE,
                DataClass::UserData,
                DataClass::UserData,
            );
        }
        self.kernel_work(b, rng, cpu, 500, 170);
        b.rmw(self.layout.counter_addr(7), DataClass::InfreqCounter); // v_fork
    }

    /// `exec`: PTE initialization loop, bss zeroing, text/data page-in
    /// copies from the buffer cache.
    #[allow(clippy::too_many_arguments)]
    pub fn exec_load(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        pid: u32,
        text_pages: u32,
        zero_pages: u32,
        frame_base: u32,
    ) {
        self.code.exec_entry.emit(b);
        self.kstack_touch(b, cpu, 3, 4);
        let n_ptes = rng.gen_range(32..96u32);
        for k in 0..n_ptes {
            self.code.pte_init_loop.emit_block(b, 0);
            b.write(self.layout.pte_addr(pid, k), DataClass::PageTable);
        }
        for p in 0..text_pages {
            let buf = self.layout.buffer_addr(self.pick_buffer(rng));
            self.block_copy(
                b,
                buf,
                self.layout.frame_addr(frame_base + p),
                oscache_trace::PAGE_SIZE,
                DataClass::BufferCache,
                DataClass::PageFrame,
            );
        }
        for p in 0..zero_pages {
            self.block_zero(
                b,
                self.layout.frame_addr(frame_base + text_pages + p),
                oscache_trace::PAGE_SIZE,
                DataClass::PageFrame,
            );
        }
        self.kernel_work(b, rng, cpu, 500, 170);
        b.rmw(self.layout.counter_addr(8), DataClass::InfreqCounter); // v_exec
    }

    /// Context switch: save sequence, scheduler pick under the `sched`
    /// lock, run-queue manipulation, resume sequence.
    pub fn context_switch(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        to_pid: u32,
    ) {
        self.code.ctx_save.emit(b);
        self.kstack_touch(b, cpu, 4, 10);
        let lid = self.lock_id(KernelLock::Sched);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::Sched));
        self.code.sched_pick.emit(b);
        b.read(self.layout.runq_head_addr(), DataClass::RunQueue);
        // The run queue is short: its first few nodes stay cache-resident.
        for _ in 0..rng.gen_range(1..4u32) {
            let node = rng.gen_range(0..8u32);
            b.read(
                self.layout.runq_nodes.offset(node * 64),
                DataClass::RunQueue,
            );
        }
        b.write(self.layout.runq_head_addr(), DataClass::RunQueue);
        b.lock_release(lid, self.layout.lock_addr(KernelLock::Sched));
        // Resource-table pointer: read when checking the preempted process,
        // written later when the resource is re-assigned (frequently-shared
        // with partial producer-consumer behaviour, §5).
        let r = rng.gen_range(0..crate::N_RESOURCES);
        b.read(self.layout.resource_addr(r), DataClass::FreqShared);
        self.code.resume_proc.emit(b);
        b.write(self.layout.resource_addr(r), DataClass::FreqShared);
        // Restore the incoming process: u-area, register save area, map.
        for k in 0..12u32 {
            b.read(
                self.layout.proc_addr(to_pid).offset(k * WORD_SIZE),
                DataClass::ProcTable,
            );
        }
        for k in 0..3u32 {
            b.write(
                self.layout.proc_addr(to_pid).offset((12 + k) * WORD_SIZE),
                DataClass::ProcTable,
            );
        }
        b.read(self.layout.pte_addr(to_pid, 0), DataClass::PageTable);
        // Falsely-shared per-CPU scheduling info.
        b.write(self.layout.sched_info_addr(cpu), DataClass::KernelOther);
        self.kernel_work(b, rng, cpu, 380, 120);
        b.rmw(self.layout.counter_addr(1), DataClass::InfreqCounter); // v_swtch
    }

    /// Sender side of a cross-processor interrupt.
    pub fn xproc_send(&self, b: &mut StreamBuilder, target_cpu: usize) {
        b.write(self.layout.cpievents_addr(target_cpu), DataClass::CpiEvents);
    }

    /// Receiver side of a cross-processor interrupt.
    pub fn xproc_handle(&self, b: &mut StreamBuilder, cpu: usize) {
        self.code.cpi_handler.emit(b);
        b.read(self.layout.cpievents_addr(cpu), DataClass::CpiEvents);
        b.rmw(self.layout.counter_addr(0), DataClass::InfreqCounter); // v_intr
        self.kstack_touch(b, cpu, 1, 2);
    }

    /// Receiver-side follow-up work of a cross-processor interrupt.
    pub fn xproc_body(&self, b: &mut StreamBuilder, rng: &mut impl Rng, cpu: usize) {
        self.kernel_work(b, rng, cpu, 100, 35);
    }

    /// Timer interrupt: timer/accounting sequences on the shared timer
    /// structure under the timer lock.
    pub fn timer_tick(&self, b: &mut StreamBuilder, rng: &mut impl Rng, cpu: usize, cur_pid: u32) {
        self.code.timer_seq.emit(b);
        let lid = self.lock_id(KernelLock::Timer);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::Timer));
        let timer = self.layout.hrtimer_addr();
        for k in 0..4u32 {
            b.read(timer.offset(k * WORD_SIZE), DataClass::TimerStruct);
        }
        b.write(timer.offset(0), DataClass::TimerStruct);
        b.lock_release(lid, self.layout.lock_addr(KernelLock::Timer));
        // Callout-table scan (sequential, small).
        for k in 0..3u32 {
            b.read(
                self.layout.runq_nodes.offset(0x8000 + k * 16),
                DataClass::KernelOther,
            );
        }
        self.code.acct_seq.emit(b);
        let alid = self.lock_id(KernelLock::Accounting);
        b.lock_acquire(alid, self.layout.lock_addr(KernelLock::Accounting));
        b.rmw(self.layout.counter_addr(13), DataClass::InfreqCounter); // v_tick
        b.lock_release(alid, self.layout.lock_addr(KernelLock::Accounting));
        b.read(self.layout.proc_addr(cur_pid), DataClass::ProcTable);
        b.write(self.layout.sched_info_addr(cpu), DataClass::KernelOther);
        self.kernel_work(b, rng, cpu, 180, 60);
    }

    /// `read(2)`-style file read: buffer-cache lookup under its lock, then
    /// a (usually sub-page) copy out to the user buffer.
    pub fn file_read(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        pid: u32,
        len: u32,
        buf_n: u32,
    ) {
        self.code.file_io_entry.emit(b);
        self.kstack_touch(b, cpu, 2, 2);
        let lid = self.lock_id(KernelLock::BufCache);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::BufCache));
        let buf = self.layout.buffer_addr(buf_n);
        b.read(buf, DataClass::BufferCache); // header probe
        b.lock_release(lid, self.layout.lock_addr(KernelLock::BufCache));
        let user = self
            .layout
            .user_data(pid)
            .offset(rng.gen_range(0..64u32) * 4096);
        self.block_copy(
            b,
            buf,
            user,
            len,
            DataClass::BufferCache,
            DataClass::UserData,
        );
        self.kernel_work(b, rng, cpu, 240, 80);
        b.rmw(self.layout.counter_addr(9), DataClass::InfreqCounter); // v_read
    }

    /// `write(2)`-style file write: copy from the user buffer into a
    /// buffer-cache buffer.
    pub fn file_write(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        cpu: usize,
        pid: u32,
        len: u32,
        buf_n: u32,
    ) {
        self.code.file_io_entry.emit(b);
        self.kstack_touch(b, cpu, 2, 2);
        // Processes write out data they just produced: the source is the
        // (warm) start of the data segment.
        let user = self
            .layout
            .user_data(pid)
            .offset(rng.gen_range(0..4u32) * 1024);
        let lid = self.lock_id(KernelLock::BufCache);
        b.lock_acquire(lid, self.layout.lock_addr(KernelLock::BufCache));
        let buf = self.layout.buffer_addr(buf_n);
        b.read(buf, DataClass::BufferCache);
        b.lock_release(lid, self.layout.lock_addr(KernelLock::BufCache));
        self.block_copy(
            b,
            user,
            buf,
            len,
            DataClass::UserData,
            DataClass::BufferCache,
        );
        self.kernel_work(b, rng, cpu, 240, 80);
        b.rmw(self.layout.counter_addr(10), DataClass::InfreqCounter); // v_write
    }

    /// The pager's periodic sweep: reads every event counter and walks some
    /// page frames (makes the counters *used*, not just updated — §5.1).
    pub fn pager_sweep(&self, b: &mut StreamBuilder, rng: &mut impl Rng) {
        self.read_all_counters(b);
        for _ in 0..8 {
            let f = rng.gen_range(0..crate::N_FRAMES);
            self.code.freelist_loop.emit_block(b, 0);
            b.read(self.layout.frame_addr(f), DataClass::KernelOther);
        }
        b.rmw(self.layout.counter_addr(15), DataClass::InfreqCounter); // v_pageout
    }

    /// Warms a fraction of the lines of a block before a block operation
    /// reads it (controls Table 3's "source lines already cached").
    #[allow(clippy::too_many_arguments)]
    pub fn warm_block(
        &self,
        b: &mut StreamBuilder,
        rng: &mut impl Rng,
        base: Addr,
        len: u32,
        fraction: f64,
        write: bool,
        class: DataClass,
    ) {
        let mut off = 0;
        while off < len {
            if rng.gen_bool(fraction) {
                if write {
                    b.write(base.offset(off), class);
                } else {
                    b.read(base.offset(off), class);
                }
            }
            off += 16; // one L1 line
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oscache_trace::rng::SmallRng;
    use oscache_trace::{CodeLayout, Event, Mode};

    fn kernel() -> (Kernel, CodeLayout) {
        let mut code = CodeLayout::new();
        let k = Kernel::new(&mut code);
        (k, code)
    }

    #[test]
    fn block_copy_emits_balanced_brackets_and_words() {
        let (k, _) = kernel();
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        k.block_copy(
            &mut b,
            Addr(0x1000_0000),
            Addr(0x1100_0000),
            4096,
            DataClass::PageFrame,
            DataClass::PageFrame,
        );
        let s = b.finish();
        assert_eq!(s.read_count(), 512); // 4096 / 8
        assert_eq!(s.write_count(), 512);
        let begins = s
            .events()
            .iter()
            .filter(|e| matches!(e, Event::BlockOpBegin { .. }))
            .count();
        let ends = s
            .events()
            .iter()
            .filter(|e| matches!(e, Event::BlockOpEnd))
            .count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
    }

    #[test]
    fn block_zero_emits_only_writes() {
        let (k, _) = kernel();
        let mut b = StreamBuilder::new();
        k.block_zero(&mut b, Addr(0x1000_0000), 1024, DataClass::PageFrame);
        let s = b.finish();
        assert_eq!(s.read_count(), 0);
        assert_eq!(s.write_count(), 128);
    }

    #[test]
    fn page_fault_locks_balance_and_touch_expected_classes() {
        let (k, _) = kernel();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        k.page_fault(&mut b, &mut rng, 0, 5, 40, 100, Fill::Zero);
        let s = b.finish(); // panics if locks unbalanced
        let classes: Vec<_> = s.events().iter().filter_map(|e| e.data_class()).collect();
        assert!(classes.contains(&DataClass::PageTable));
        assert!(classes.contains(&DataClass::Freelist));
        assert!(classes.contains(&DataClass::InfreqCounter));
        assert!(classes.contains(&DataClass::PageFrame));
    }

    #[test]
    fn fork_chains_copies() {
        let (k, _) = kernel();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = StreamBuilder::new();
        k.fork(&mut b, &mut rng, 1, 2, 3, &[10, 11], &[20, 21]);
        let s = b.finish();
        let copies = s
            .events()
            .iter()
            .filter(|e| matches!(e, Event::BlockOpBegin { .. }))
            .count();
        assert_eq!(copies, 2);
    }

    #[test]
    fn services_leave_no_locks_held() {
        let (k, _) = kernel();
        let mut rng = SmallRng::seed_from_u64(11);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        k.syscall_entry(&mut b, &mut rng, 2, 7);
        k.context_switch(&mut b, &mut rng, 2, 7);
        k.timer_tick(&mut b, &mut rng, 2, 7);
        k.file_read(&mut b, &mut rng, 2, 7, 512, 1);
        k.file_write(&mut b, &mut rng, 2, 7, 256, 2);
        k.xproc_send(&mut b, 3);
        k.xproc_handle(&mut b, 2);
        k.pager_sweep(&mut b, &mut rng);
        k.exec_load(&mut b, &mut rng, 2, 7, 2, 1, 50);
        let _ = b.finish(); // would panic if any lock were held
    }

    #[test]
    fn warm_block_fraction_controls_coverage() {
        let (k, _) = kernel();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut b = StreamBuilder::new();
        k.warm_block(
            &mut b,
            &mut rng,
            Addr(0x1000_0000),
            4096,
            0.5,
            false,
            DataClass::PageFrame,
        );
        let s = b.finish();
        let n = s.read_count();
        assert!(n > 80 && n < 180, "expected ~128 warm touches, got {n}");
    }
}
