//! Behavioural tests of the OS service generators: each service must
//! touch the structures the paper attributes to it, with balanced
//! synchronization and sensible volumes.

use oscache_kernel::{Fill, Kernel, KernelLock, N_COUNTERS};
use oscache_trace::rng::SmallRng;
use oscache_trace::{Addr, CodeLayout, DataClass, Event, Mode, StreamBuilder};

fn kernel() -> Kernel {
    let mut code = CodeLayout::new();
    Kernel::new(&mut code)
}

fn classes_of(s: &oscache_trace::Stream) -> Vec<DataClass> {
    s.events().iter().filter_map(|e| e.data_class()).collect()
}

fn count_class(s: &oscache_trace::Stream, c: DataClass) -> usize {
    classes_of(s).into_iter().filter(|&x| x == c).count()
}

#[test]
fn syscall_touches_dispatch_table_and_current_proc() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(1);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.syscall_entry(&mut b, &mut rng, 1, 9);
    let s = b.finish();
    assert!(count_class(&s, DataClass::SyscallTable) >= 1);
    assert!(count_class(&s, DataClass::ProcTable) >= 10);
    assert!(count_class(&s, DataClass::KernelStack) >= 10);
    assert_eq!(count_class(&s, DataClass::InfreqCounter), 2); // one rmw
}

#[test]
fn page_fault_scans_ptes_sequentially() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(2);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.page_fault(&mut b, &mut rng, 0, 5, 100, 7, Fill::Soft);
    let s = b.finish();
    let pte_reads: Vec<Addr> = s
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::Read {
                addr,
                class: DataClass::PageTable,
            } => Some(*addr),
            _ => None,
        })
        .collect();
    assert!(pte_reads.len() >= 4, "fault must scan several PTEs");
    // Sequential: consecutive PTE reads are 4 bytes apart.
    for w in pte_reads.windows(2) {
        assert_eq!(w[1].0 - w[0].0, 4, "PTE scan must be sequential");
    }
    // The free-list lock protects the allocation.
    let acquires = s
        .events()
        .iter()
        .filter(|e| matches!(e, Event::LockAcquire { .. }))
        .count();
    assert_eq!(acquires, 1);
}

#[test]
fn page_fault_fill_kinds_differ() {
    let k = kernel();
    let rng = SmallRng::seed_from_u64(3);
    let count_ops = |fill: Fill| {
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        k.page_fault(&mut b, &mut rng.clone(), 0, 5, 100, 7, fill);
        let s = b.finish();
        s.events()
            .iter()
            .filter_map(|e| match e {
                Event::BlockOpBegin { op } => Some(op.kind),
                _ => None,
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(count_ops(Fill::Soft), vec![]);
    assert_eq!(count_ops(Fill::Zero), vec![oscache_trace::BlockKind::Zero]);
    let buf = k.layout.buffer_addr(1);
    assert_eq!(
        count_ops(Fill::From(buf)),
        vec![oscache_trace::BlockKind::Copy]
    );
}

#[test]
fn context_switch_reads_the_target_process() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(4);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.context_switch(&mut b, &mut rng, 2, 17);
    let s = b.finish();
    let proc17 = k.layout.proc_addr(17);
    let target_reads = s
        .events()
        .iter()
        .filter(|e| {
            matches!(e, Event::Read { addr, class: DataClass::ProcTable }
                if addr.0 >= proc17.0 && addr.0 < proc17.0 + 512)
        })
        .count();
    assert!(target_reads >= 10, "resume must read the target's entry");
    assert!(count_class(&s, DataClass::RunQueue) >= 3);
    assert!(count_class(&s, DataClass::FreqShared) >= 2);
}

#[test]
fn timer_tick_takes_timer_and_accounting_locks() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(5);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.timer_tick(&mut b, &mut rng, 0, 4);
    let s = b.finish();
    let lock_addrs: Vec<Addr> = s
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::LockAcquire { addr, .. } => Some(*addr),
            _ => None,
        })
        .collect();
    assert!(lock_addrs.contains(&k.layout.lock_addr(KernelLock::Timer)));
    assert!(lock_addrs.contains(&k.layout.lock_addr(KernelLock::Accounting)));
    assert!(count_class(&s, DataClass::TimerStruct) >= 4);
}

#[test]
fn xproc_pair_touches_cpievents_and_v_intr() {
    let k = kernel();
    let mut send = StreamBuilder::new();
    send.set_mode(Mode::Os);
    k.xproc_send(&mut send, 3);
    let s = send.finish();
    assert_eq!(s.write_count(), 1);
    assert_eq!(
        s.events()[1].data_addr().unwrap(),
        k.layout.cpievents_addr(3)
    );
    let mut h = StreamBuilder::new();
    h.set_mode(Mode::Os);
    k.xproc_handle(&mut h, 3);
    let s = h.finish();
    assert!(count_class(&s, DataClass::CpiEvents) >= 1);
    // v_intr is counter 0.
    let v_intr = k.layout.counter_addr(0);
    assert!(s.events().iter().any(|e| e.data_addr() == Some(v_intr)));
}

#[test]
fn pager_sweep_reads_every_counter() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(7);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.pager_sweep(&mut b, &mut rng);
    let s = b.finish();
    for c in 0..N_COUNTERS {
        let addr = k.layout.counter_addr(c);
        assert!(
            s.events().iter().any(|e| e.data_addr() == Some(addr)),
            "counter {c} unread"
        );
    }
}

#[test]
fn fork_pages_copies_the_parents_address_space() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(8);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    let parent_base = k.layout.user_data(5);
    let child_base = k.layout.user_data(9);
    k.fork_pages(&mut b, &mut rng, 0, 5, 9, parent_base, child_base, 2);
    let s = b.finish();
    let ops: Vec<_> = s
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::BlockOpBegin { op } => Some(*op),
            _ => None,
        })
        .collect();
    assert_eq!(ops.len(), 2);
    assert_eq!(ops[0].src, parent_base);
    assert_eq!(ops[0].dst, child_base);
    assert_eq!(ops[1].src.0, parent_base.0 + 4096);
    // PTE copies appear.
    assert!(count_class(&s, DataClass::PageTable) >= 40);
}

#[test]
fn work_scale_controls_service_volume() {
    let mut code = CodeLayout::new();
    let mut k_small = Kernel::new(&mut code);
    k_small.work_scale = 0.5;
    let mut code2 = CodeLayout::new();
    let mut k_big = Kernel::new(&mut code2);
    k_big.work_scale = 2.0;
    let run = |k: &Kernel| {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut b = StreamBuilder::new();
        b.set_mode(Mode::Os);
        k.syscall_entry(&mut b, &mut rng, 0, 4);
        b.finish().len()
    };
    let small = run(&k_small);
    let big = run(&k_big);
    assert!(
        big > small * 2,
        "work_scale must scale service volume: {small} vs {big}"
    );
}

#[test]
fn file_ops_move_the_requested_bytes() {
    let k = kernel();
    let mut rng = SmallRng::seed_from_u64(10);
    let mut b = StreamBuilder::new();
    b.set_mode(Mode::Os);
    k.file_read(&mut b, &mut rng, 0, 4, 512, 2);
    let s = b.finish();
    let op = s
        .events()
        .iter()
        .find_map(|e| match e {
            Event::BlockOpBegin { op } => Some(*op),
            _ => None,
        })
        .expect("file read must copy");
    assert_eq!(op.len, 512);
    assert_eq!(op.src, k.layout.buffer_addr(2));
    assert_eq!(op.src_class, DataClass::BufferCache);
    assert_eq!(op.dst_class, DataClass::UserData);
}

#[test]
fn misc_lookup_probability_gates_cold_chases() {
    let mut code = CodeLayout::new();
    let mut k = Kernel::new(&mut code);
    k.misc_lookup = 0.0;
    let count_proc_reads = |k: &Kernel| {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut n = 0;
        for _ in 0..50 {
            let mut b = StreamBuilder::new();
            b.set_mode(Mode::Os);
            k.syscall_entry(&mut b, &mut rng, 0, 4);
            n += count_class(&b.finish(), DataClass::ProcTable);
        }
        n
    };
    let without = count_proc_reads(&k);
    k.misc_lookup = 1.0;
    let with = count_proc_reads(&k);
    assert!(
        with > without + 100,
        "misc lookups must add scattered reads: {without} vs {with}"
    );
}
