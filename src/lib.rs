//! # oscache
//!
//! A reproduction of Chun Xia and Josep Torrellas, *"Improving the Data
//! Cache Performance of Multiprocessor Operating Systems"* (HPCA 1996), as
//! a Rust library.
//!
//! The paper asks how to eliminate most of a multiprocessor OS's data-cache
//! misses while keeping off-the-shelf processors, and answers with a ladder
//! of optimizations: DMA-like block operations, data privatization and
//! relocation, a selective Firefly update protocol on a 384-byte core of
//! shared variables, and hot-spot data prefetching — together eliminating
//! or hiding ~75% of OS data misses and speeding the OS up by ~19%.
//!
//! This crate is a facade over the workspace:
//!
//! * [`trace`] — the reference/event substrate;
//! * [`memsys`] — the cycle-level model of the paper's 4-CPU bus-based
//!   machine (caches, write buffers, split-transaction bus, Illinois MESI
//!   + Firefly update coherence, prefetching, the `Blk_Dma` engine);
//! * [`kernel`] — the synthetic multiprocessor-UNIX substrate (layout,
//!   code, services) standing in for the unobtainable Alliant FX/8 traces;
//! * [`workloads`] — the paper's four workloads (`TRFD_4`, `TRFD+Make`,
//!   `ARC2D+Fsck`, `Shell`);
//! * [`core`] — system configurations, automated trace analysis, the
//!   software-optimization passes, the simulation driver, and the
//!   reproduction of every table and figure.
//!
//! # Quick start
//!
//! ```
//! use oscache::core::{run_system, System};
//! use oscache::workloads::{build, BuildOptions, Workload};
//!
//! // Build a small TRFD_4 trace and compare Base with the full ladder.
//! let trace = build(Workload::Trfd4, BuildOptions { scale: 0.05, seed: 1, ..Default::default() });
//! let base = run_system(&trace, System::Base);
//! let best = run_system(&trace, System::BCPref);
//! let misses = |r: &oscache::core::RunResult| r.stats.total().os_read_misses();
//! assert!(misses(&best) < misses(&base));
//! ```
//!
//! The `repro` binary (in `oscache-bench`) regenerates every table and
//! figure: `cargo run --release -p oscache-bench --bin repro`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oscache_core as core;
pub use oscache_kernel as kernel;
pub use oscache_memsys as memsys;
pub use oscache_trace as trace;
pub use oscache_workloads as workloads;
