//! Coherence-optimization deep dive (the paper's §5): runs the automated
//! analysis on a workload trace, prints what it discovered — privatizable
//! counters, the ≤384-byte selective-update set — and compares the
//! invalidation protocol, selective updates, and a pure update protocol.
//!
//! ```text
//! cargo run --release --example coherence_lab [workload]
//! ```

use oscache::core::analysis::{find_privatizable, find_update_set, profile_sharing};
use oscache::core::{run_spec, Geometry, System, UpdatePolicy};
use oscache::workloads::{build, BuildOptions, Workload};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "TRFD_4".into());
    let workload = Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&which))
        .unwrap_or(Workload::Trfd4);

    println!("building {workload} ...");
    let trace = build(
        workload,
        BuildOptions {
            scale: 0.2,
            ..Default::default()
        },
    );

    // The automated stand-in for the paper's manual monitor-driven analysis.
    let profile = profile_sharing(&trace);
    let privatized = find_privatizable(&profile);
    println!("\nprivatizable counters found ({}):", privatized.len());
    for a in &privatized {
        let name = trace
            .meta
            .var_at(*a)
            .map(|v| v.name.clone())
            .unwrap_or_else(|| format!("{a}"));
        println!("  {name}");
    }

    let set = find_update_set(&profile, &privatized);
    println!(
        "\nselective-update set ({} B total; paper uses 384 B):",
        set.bytes()
    );
    println!(
        "  {} barriers, {} locks, {} shared words",
        set.barriers.len(),
        set.locks.len(),
        set.vars.len()
    );
    for a in set.vars.iter().take(8) {
        let name = trace
            .meta
            .var_at(*a)
            .map(|v| v.name.clone())
            .unwrap_or_else(|| format!("{a}"));
        println!("  shared: {name}");
    }

    // Invalidate-only vs selective updates vs pure updates (§5.2).
    println!("\ncoherence protocol comparison (on top of Blk_Dma + reloc):");
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "protocol", "coh misses", "update words", "bus busy cyc"
    );
    for (label, policy) in [
        ("invalidate (Reloc)", UpdatePolicy::None),
        ("selective (RelUp)", UpdatePolicy::Selective),
        ("pure update", UpdatePolicy::Full),
    ] {
        // Pure update is the §5.2 comparison point: the update protocol
        // over every kernel page of the *unoptimized* kernel.
        let mut spec = if policy == UpdatePolicy::Full {
            System::BlkDma.spec()
        } else {
            System::BCohReloc.spec()
        };
        spec.update = policy;
        let r = run_spec(&trace, spec, Geometry::default());
        let t = r.stats.total();
        println!(
            "{label:<22} {:>12} {:>14} {:>14}",
            t.os_miss_coherence.iter().sum::<u64>(),
            r.stats.bus.update_words,
            r.stats.bus.busy_cycles,
        );
    }
    println!(
        "\nThe paper's point (§5.2): a few hundred bytes of update-mapped\n\
         variables captures most of the pure update protocol's miss\n\
         reduction at a fraction of its broadcast traffic."
    );
}
