//! Scalability extension: how do the paper's conclusions change as more
//! processors share the bus? (The paper's machine has 4; bus-based
//! machines of the era shipped with up to 8.)
//!
//! ```text
//! cargo run --release --example scalability
//! ```

use oscache::core::{run_system, MissBreakdown, OsTimeBreakdown, System};
use oscache::workloads::{build, BuildOptions, Workload};

fn main() {
    println!("TRFD_4 with a growing processor count (scale 0.15):\n");
    println!(
        "{:<6} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "cpus", "OS misses", "coh %", "Blk_Dma", "BCPref", "bus busy%"
    );
    for n_cpus in [2usize, 4, 8] {
        let t = build(
            Workload::Trfd4,
            BuildOptions {
                scale: 0.15,
                n_cpus,
                ..Default::default()
            },
        );
        let base = run_system(&t, System::Base);
        let dma = run_system(&t, System::BlkDma);
        let best = run_system(&t, System::BCPref);
        let os =
            |r: &oscache::core::RunResult| OsTimeBreakdown::from_stats(&r.stats).total() as f64;
        let breakdown = MissBreakdown::from_stats(&base.stats);
        let busy =
            100.0 * base.stats.bus.busy_cycles as f64 / (base.stats.makespan() as f64).max(1.0);
        println!(
            "{:<6} {:>12} {:>9.1}% {:>9.2}x {:>11.2}x {:>9.0}%",
            n_cpus,
            breakdown.total,
            breakdown.coherence_pct,
            os(&dma) / os(&base),
            os(&best) / os(&base),
            busy,
        );
    }
    println!(
        "\nWith more CPUs the bus saturates and coherence activity grows, so\n\
         the DMA engine (which also serializes on the bus) gains less while\n\
         the software optimizations keep their value — consistent with the\n\
         paper's observation that bus-based designs were hitting their\n\
         scaling limit."
    );
}
