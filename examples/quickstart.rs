//! Quickstart: build one workload, run the paper's system ladder on it,
//! and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [scale]
//! ```

use oscache::core::{run_system, OsTimeBreakdown, RunResult, System, WorkloadMetrics};
use oscache::workloads::{build, BuildOptions, Workload};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);

    println!("building the TRFD_4 workload (scale {scale}) ...");
    let trace = build(
        Workload::Trfd4,
        BuildOptions {
            scale,
            ..Default::default()
        },
    );
    println!("  {trace}");

    println!("\nsimulating the paper's system ladder:");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "system", "OS misses", "OS time (cyc)", "vs Base"
    );
    let mut base: Option<RunResult> = None;
    for sys in System::all() {
        let r = run_system(&trace, sys);
        let misses = r.stats.total().os_read_misses();
        let time = OsTimeBreakdown::from_stats(&r.stats).total();
        let rel = base
            .as_ref()
            .map(|b| time as f64 / OsTimeBreakdown::from_stats(&b.stats).total() as f64)
            .unwrap_or(1.0);
        println!("{:<12} {misses:>12} {time:>14} {rel:>11.2}x", sys.label());
        if sys == System::Base {
            // Also show the Table 1 characteristics of the baseline run.
            let m = WorkloadMetrics::from_stats(&r.stats);
            println!(
                "             (user {:.0}% / idle {:.0}% / OS {:.0}% of time; \
                 D-miss rate {:.1}%)",
                m.user_time_pct, m.idle_time_pct, m.os_time_pct, m.dmiss_rate_pct
            );
            base = Some(r);
        }
    }

    let b = base.expect("base ran");
    let best = run_system(&trace, System::BCPref);
    let removed =
        1.0 - best.stats.total().os_read_misses() as f64 / b.stats.total().os_read_misses() as f64;
    println!(
        "\nBCPref eliminates or hides {:.0}% of OS data misses (paper: ~75% \
         across the four workloads).",
        100.0 * removed
    );
}
