//! Building a custom workload with the public [`Mix`] API: start from a
//! calibrated paper workload and turn individual knobs to ask what-if
//! questions the paper could not.
//!
//! Here: what if TRFD's processes exchanged data twice as often, and what
//! if the kernel had no page-fault activity at all? (The answers are not
//! the obvious ones — warm-data copies favour the cached path.)
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use oscache::core::{run_system, MissBreakdown, OsTimeBreakdown, System};
use oscache::workloads::{build_with_mix, BuildOptions, Workload};

fn main() {
    let opts = BuildOptions {
        scale: 0.2,
        ..Default::default()
    };

    let mut rows = Vec::new();
    // The calibrated original.
    rows.push(("TRFD_4 (paper mix)", Workload::Trfd4.mix()));

    // Twice the data exchanges.
    let mut chatty = Workload::Trfd4.mix();
    chatty.user_copy *= 2.0;
    chatty.chain_copy *= 2.0;
    rows.push(("2x data exchanges", chatty));

    // No paging at all (as if memory were infinite).
    let mut no_paging = Workload::Trfd4.mix();
    no_paging.pf_zero = 0.0;
    no_paging.pf_pagein = 0.0;
    no_paging.pf_soft = 0.0;
    rows.push(("no page faults", no_paging));

    println!(
        "{:<22} {:>10} {:>9} {:>9} {:>9} {:>12}",
        "mix", "OS misses", "block%", "coh%", "other%", "Blk_Dma gain"
    );
    for (name, mix) in rows {
        let t = build_with_mix(name, Workload::Trfd4, mix, opts);
        let base = run_system(&t, System::Base);
        let dma = run_system(&t, System::BlkDma);
        let b = MissBreakdown::from_stats(&base.stats);
        let gain = 1.0
            - OsTimeBreakdown::from_stats(&dma.stats).total() as f64
                / OsTimeBreakdown::from_stats(&base.stats).total() as f64;
        println!(
            "{:<22} {:>10} {:>8.1}% {:>8.1}% {:>8.1}% {:>11.1}%",
            name,
            b.total,
            b.block_op_pct,
            b.coherence_pct,
            b.other_pct,
            100.0 * gain
        );
    }
    println!(
        "\nNote the nuance the knobs expose: extra data exchanges move pages\n\
         that are already cache-warm, where the DMA engine's fixed bus cost\n\
         buys little - its payoff concentrates in the cold and zero-fill\n\
         traffic that paging generates."
    );
}
