//! Block-operation deep dive (the paper's §4 motivation): a hand-built
//! fork-storm trace — processes forking chains of children — run under
//! every block-operation scheme.
//!
//! Shows why simple bypassing backfires (inside reuses: the destination of
//! one copy is the source of the next) while the DMA-like scheme removes
//! all block misses.
//!
//! ```text
//! cargo run --release --example fork_storm
//! ```

use oscache::kernel::Kernel;
use oscache::memsys::{BlockOpScheme, Machine, MachineConfig};
use oscache::trace::{CodeLayout, Mode, Trace, TraceMeta};
use oscache_trace::rng::SmallRng;

fn main() {
    // Build a 4-CPU trace in which each CPU runs a chain of forks: the
    // child address space of one fork is the parent of the next.
    let mut code = CodeLayout::new();
    let kernel = Kernel::new(&mut code);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut streams = Vec::new();
    for cpu in 0..4usize {
        let mut b = oscache::trace::StreamBuilder::new();
        b.set_mode(Mode::Os);
        let mut parent = 4 + cpu as u32;
        for gen in 0..24u32 {
            let child = 8 + (parent + 4) % 16;
            let pbase = kernel.layout.user_data(parent);
            let cbase = kernel.layout.user_data(child);
            kernel.fork_pages(&mut b, &mut rng, cpu, parent, child, pbase, cbase, 3);
            // The child touches its pages before forking again.
            for k in 0..128u32 {
                b.read(
                    cbase.offset((gen * 97 + k * 16) % (3 * 4096)),
                    oscache::trace::DataClass::UserData,
                );
            }
            parent = child;
        }
        streams.push(b.finish());
    }
    let mut trace = Trace::new(
        4,
        TraceMeta {
            workload: "fork_storm".into(),
            code,
            vars: kernel.layout.vars.clone(),
            kernel_data: Vec::new(),
        },
    );
    trace.streams = streams;

    println!("fork-storm: 4 CPUs x 24 chained forks x 3 pages each\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "scheme", "blk miss", "other", "reuses", "write stall", "OS cycles"
    );
    for scheme in [
        BlockOpScheme::Cached,
        BlockOpScheme::Pref,
        BlockOpScheme::Bypass,
        BlockOpScheme::ByPref,
        BlockOpScheme::Dma,
    ] {
        let cfg = MachineConfig::base().with_block_scheme(scheme);
        let stats = Machine::new(cfg, &trace)
            .expect("valid trace")
            .run()
            .expect("clean run");
        let t = stats.total();
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>12} {:>12}",
            scheme.label(),
            t.os_miss_blockop,
            t.os_miss_other,
            t.reuse_inside + t.reuse_outside,
            t.dwrite_cycles.os,
            t.accounted_cycles(),
        );
    }
    println!(
        "\nNote how Blk_Bypass turns chained-copy sources into reuse misses,\n\
         while Blk_Dma removes the block misses entirely (paper §4.1.3/§4.2)."
    );
}
