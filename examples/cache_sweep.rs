//! Geometry exploration in the style of the paper's Figures 6 and 7:
//! sweeps the primary-data-cache size and line size and reports how
//! `Base`, `Blk_Dma`, and `BCPref` respond.
//!
//! ```text
//! cargo run --release --example cache_sweep [workload]
//! ```

use oscache::core::{run_spec, Geometry, OsTimeBreakdown, System};
use oscache::workloads::{build, BuildOptions, Workload};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "Shell".into());
    let workload = Workload::all()
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&which))
        .unwrap_or(Workload::Shell);
    println!("building {workload} ...");
    let trace = build(
        workload,
        BuildOptions {
            scale: 0.15,
            ..Default::default()
        },
    );
    let systems = [System::Base, System::BlkDma, System::BCPref];

    println!("\nL1D size sweep (16-B lines), normalized OS time vs Base@size:");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "size", "Base", "Blk_Dma", "BCPref"
    );
    for kb in [16u32, 32, 64] {
        let geom = Geometry {
            l1d_size: kb * 1024,
            ..Geometry::default()
        };
        let times: Vec<u64> = systems
            .iter()
            .map(|s| OsTimeBreakdown::from_stats(&run_spec(&trace, s.spec(), geom).stats).total())
            .collect();
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            format!("{kb} KB"),
            1.0,
            times[1] as f64 / times[0] as f64,
            times[2] as f64 / times[0] as f64
        );
    }

    println!("\nL1 line-size sweep (32-KB cache, 64-B L2 lines):");
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "line", "Base", "Blk_Dma", "BCPref"
    );
    for line in [16u32, 32, 64] {
        let geom = Geometry {
            l1_line: line,
            l2_line: 64,
            ..Geometry::default()
        };
        let times: Vec<u64> = systems
            .iter()
            .map(|s| OsTimeBreakdown::from_stats(&run_spec(&trace, s.spec(), geom).stats).total())
            .collect();
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2}",
            format!("{line} B"),
            1.0,
            times[1] as f64 / times[0] as f64,
            times[2] as f64 / times[0] as f64
        );
    }
    println!(
        "\nPaper (Figures 6-7): Blk_Dma always outperforms Base and BCPref\n\
         always outperforms Blk_Dma, across every geometry."
    );
}
